// Trace event log: timestamped spans and instants on the *simulated* clock,
// serialized in Chrome trace-event JSON ("chrome://tracing" / Perfetto).
//
// The time source is injectable: net::Simulator installs its own clock while
// it is alive, and the DDP trainer records spans with explicit sim-clock
// timestamps. With no source installed, a deterministic logical tick clock
// (one microsecond per event) keeps output reproducible — never wall time.
//
// Determinism contract: events are recorded only from sequential
// orchestration code (never inside parallel_for bodies), so the event
// sequence — and therefore the serialized JSON — is bit-identical for any
// thread count. Parallel workers report through MetricsRegistry counters
// instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace trimgrad::core {

class TraceLog {
 public:
  /// Returns the current time in seconds (simulated or logical).
  using TimeFn = std::function<double()>;

  struct Event {
    std::string name;
    std::string cat;
    char phase = 'X';      // 'X' complete, 'i' instant
    double ts_us = 0.0;    // microseconds
    double dur_us = 0.0;   // 'X' only
    std::uint32_t tid = 0;
    std::vector<std::pair<std::string, double>> args;
  };

  /// Disabled logs drop events at the recording call; on by default.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// Install the clock (seconds). Pass {} to revert to the logical tick
  /// clock. net::Simulator installs itself here for its lifetime.
  void set_time_source(TimeFn fn);

  /// Drop the oldest-first tail once this many events are recorded
  /// (recording stops; nothing is evicted). 0 = unlimited. Default 1M.
  void set_max_events(std::size_t max_events);

  /// Forget all events and reset the logical tick clock.
  void clear();

  /// Current time from the installed source, else the tick clock.
  double now_seconds();

  /// Record a zero-duration instant at now.
  void instant(std::string_view name, std::string_view cat,
               std::uint32_t tid = 0,
               std::vector<std::pair<std::string, double>> args = {});

  /// Record a complete ('X') event with explicit start/duration in seconds.
  void complete(std::string_view name, std::string_view cat, double start_s,
                double dur_s, std::uint32_t tid = 0,
                std::vector<std::pair<std::string, double>> args = {});

  /// RAII span: captures now() at construction, records a complete event at
  /// destruction. Use only in sequential phases.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    ~Span();
    /// Attach a numeric argument shown in the trace viewer.
    void arg(std::string_view key, double value);

   private:
    friend class TraceLog;
    Span(TraceLog* log, std::string_view name, std::string_view cat);
    TraceLog* log_ = nullptr;
    std::string name_;
    std::string cat_;
    double start_s_ = 0.0;
    std::vector<std::pair<std::string, double>> args_;
  };
  Span span(std::string_view name, std::string_view cat);

  std::size_t event_count() const;

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string to_json() const;
  bool write_json(const std::string& path) const;

  /// The process-wide log all built-in instrumentation records to.
  static TraceLog& global();

 private:
  mutable std::mutex mu_;
  bool enabled_ = true;
  TimeFn time_fn_;
  std::uint64_t tick_ = 0;
  std::size_t max_events_ = 1u << 20;
  std::vector<Event> events_;
};

}  // namespace trimgrad::core
