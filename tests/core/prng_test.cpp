#include "core/prng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace trimgrad::core {
namespace {

TEST(SplitMix64, ProducesKnownGoodDispersion) {
  std::uint64_t s = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(splitmix64(s));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Mix64, IsOrderSensitive) {
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
  EXPECT_NE(mix64(0, 0), 0u);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform(-2.5f, 1.5f);
    EXPECT_GE(u, -2.5f);
    EXPECT_LT(u, 1.5f);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double acc = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Xoshiro256, BernoulliMatchesProbability) {
  Xoshiro256 rng(3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, RandomSignIsBalanced) {
  Xoshiro256 rng(5);
  double acc = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.random_sign();
  EXPECT_NEAR(acc / n, 0.0, 0.02);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, GaussianMomentsMatchStandardNormal) {
  Xoshiro256 rng(17);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(StreamKey, EqualKeysDeriveEqualSeeds) {
  const StreamKey a{1, 2, 3, 4};
  const StreamKey b{1, 2, 3, 4};
  EXPECT_EQ(a.derive(), b.derive());
}

TEST(StreamKey, EachFieldChangesTheStream) {
  const StreamKey base{1, 2, 3, 4};
  EXPECT_NE(base.derive(), (StreamKey{9, 2, 3, 4}).derive());
  EXPECT_NE(base.derive(), (StreamKey{1, 9, 3, 4}).derive());
  EXPECT_NE(base.derive(), (StreamKey{1, 2, 9, 4}).derive());
  EXPECT_NE(base.derive(), (StreamKey{1, 2, 3, 9}).derive());
}

TEST(SharedRng, SenderReceiverAgreeWithoutCommunication) {
  // The §3.1/§3.2 shared-randomness contract: both sides derive identical
  // dither/rotation streams from loop coordinates alone.
  SharedRng sender(StreamKey{77, 5, 12, 3});
  SharedRng receiver(StreamKey{77, 5, 12, 3});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sender(), receiver());
}

TEST(SharedRng, RowsAreIndependentStreams) {
  SharedRng row0(StreamKey{77, 5, 12, 0});
  SharedRng row1(StreamKey{77, 5, 12, 1});
  int equal = 0;
  for (int i = 0; i < 256; ++i)
    if (row0() == row1()) ++equal;
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace trimgrad::core
