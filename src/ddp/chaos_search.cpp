#include "ddp/chaos_search.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "collective/sim_channel.h"
#include "ml/data.h"
#include "ml/model.h"
#include "net/fault_plane.h"
#include "net/topology.h"

namespace trimgrad::ddp {
namespace {

/// The cells' dataset is fixed (tiny: invariants are about the fabric and
/// the recovery paths, not accuracy) and the shrinker runs hundreds of
/// cells, so build it once.
const ml::SynthCifar& cell_data() {
  static const ml::SynthCifar* data = [] {
    ml::SynthCifarConfig dcfg;
    dcfg.classes = 10;
    dcfg.height = dcfg.width = 8;
    dcfg.train_per_class = 8;
    dcfg.test_per_class = 4;
    dcfg.proto_grid = 3;
    return new ml::SynthCifar(dcfg);
  }();
  return *data;
}

/// Spread ranks across pods so every collective crosses the core layer —
/// rank r lands on pod r mod k, host r/k within the pod.
std::vector<net::NodeId> pick_rank_hosts(const net::FatTree& ft, int world) {
  if (static_cast<std::size_t>(world) > ft.host_count()) {
    throw std::invalid_argument(
        "run_chaos_cell: world exceeds fat-tree host count");
  }
  std::vector<net::NodeId> ranks;
  for (int r = 0; r < world; ++r) {
    const std::size_t pod = static_cast<std::size_t>(r) % ft.k;
    const std::size_t i = static_cast<std::size_t>(r) / ft.k;
    ranks.push_back(ft.pod_hosts[pod][i]);
  }
  return ranks;
}

net::FabricConfig cell_fabric_config(const ChaosCellConfig& cfg) {
  net::FabricConfig fcfg;
  fcfg.edge_link = {10e9, 1e-6};
  fcfg.core_link = {10e9, 2e-6};
  fcfg.switch_queue.policy = cfg.queue_policy;
  fcfg.switch_queue.capacity_bytes = 20 * 1024;
  fcfg.switch_queue.header_capacity_bytes = 64 * 1024;
  return fcfg;
}

}  // namespace

ChaosCellResult run_chaos_cell(const ExperimentSpec& spec,
                               const net::FaultScript& script,
                               const ChaosCellConfig& cfg) {
  net::Simulator sim;
  const net::FatTree ft =
      net::build_fat_tree(sim, cfg.fat_tree_k, cell_fabric_config(cfg));
  net::partition_fat_tree(sim, ft);
  sim.seal_partition();
  sim.set_parallel_execution(true);

  net::FaultPlane plane(script.plane);
  sim.set_fault_plane(&plane);

  net::InvariantMonitor::Config mcfg;
  mcfg.flow_progress_deadline = cfg.flow_progress_deadline;
  mcfg.max_violations = cfg.max_violations;
  net::InvariantMonitor monitor(mcfg);
  monitor.attach(sim);

  collective::SimChannel::Config ccfg = spec.sim_channel_config();
  ccfg.tuning.rto = 100e-6;
  ccfg.tuning.rto_cap = 1e-3;
  ccfg.tuning.retransmit_budget = 400;
  collective::SimChannel channel(sim, pick_rank_hosts(ft, spec.world), ccfg);

  TrainerConfig tcfg = spec.trainer_config();
  tcfg.eval_every = 0;  // accuracy is not the property under test
  tcfg.codec.rht_row_len = std::size_t{1} << 10;
  tcfg.straggler_factor = script.straggler_factor;
  tcfg.fault_seed = script.plane.seed;
  DdpTrainer trainer(cell_data(), channel, tcfg, [] {
    ml::ModelConfig mcfg2;
    mcfg2.classes = 10;
    mcfg2.height = mcfg2.width = 8;
    return ml::make_mlp(mcfg2, 32);
  });
  trainer.set_invariant_monitor(&monitor);

  ChaosCellResult out;
  out.epochs = trainer.train().size();
  const net::SimTime t_end = sim.now();
  out.drained = sim.run() == t_end;
  monitor.finalize();

  out.violations = monitor.sorted_violations();
  out.total_violations = monitor.total_violations();
  out.checks = monitor.checks();
  out.fault_events = plane.log().size();
  return out;
}

net::ScriptGenConfig chaos_candidates(std::size_t fat_tree_k,
                                      std::uint64_t seed, double intensity) {
  // Probe build: node and port ids depend only on (k, build order), so the
  // candidates replay against the fabric run_chaos_cell constructs.
  net::Simulator probe;
  ChaosCellConfig cfg;
  cfg.fat_tree_k = fat_tree_k;
  const net::FatTree ft =
      net::build_fat_tree(probe, fat_tree_k, cell_fabric_config(cfg));

  net::ScriptGenConfig gen;
  gen.seed = seed;
  gen.intensity = intensity;
  std::vector<net::NodeId> switches;
  for (const auto& pod : ft.edges) switches.insert(switches.end(), pod.begin(), pod.end());
  for (const auto& pod : ft.aggs) switches.insert(switches.end(), pod.begin(), pod.end());
  for (const auto& grp : ft.cores) switches.insert(switches.end(), grp.begin(), grp.end());
  for (const net::NodeId s : switches) {
    const net::Node& n = probe.node(s);
    for (std::size_t p = 0; p < n.port_count(); ++p) gen.links.push_back({s, p});
    gen.nodes.push_back(s);
  }
  return gen;
}

ChaosRepro shrink_repro(const ExperimentSpec& spec,
                        const net::FaultScript& script,
                        const ChaosCellConfig& cfg) {
  ChaosRepro repro;
  repro.spec = spec;
  repro.script = script;

  auto fails = [&](const ExperimentSpec& s, const net::FaultScript& f) {
    ++repro.probes;
    const ChaosCellResult r = run_chaos_cell(s, f, cfg);
    if (r.total_violations > 0) repro.violations = r.violations;
    return r.total_violations > 0;
  };

  // Phase 1 — event removal to fixpoint. After this loop, removing any
  // single remaining event makes the run pass (1-minimality over events).
  bool changed = true;
  while (changed) {
    changed = false;
    auto& s = repro.script;
    for (std::size_t i = 0; i < s.plane.link_faults.size(); ++i) {
      net::FaultScript c = s;
      c.plane.link_faults.erase(c.plane.link_faults.begin() +
                                static_cast<std::ptrdiff_t>(i));
      if (fails(repro.spec, c)) { repro.script = c; changed = true; break; }
    }
    if (changed) continue;
    for (std::size_t i = 0; i < s.plane.node_faults.size(); ++i) {
      net::FaultScript c = s;
      c.plane.node_faults.erase(c.plane.node_faults.begin() +
                                static_cast<std::ptrdiff_t>(i));
      if (fails(repro.spec, c)) { repro.script = c; changed = true; break; }
    }
    if (changed) continue;
    for (std::size_t i = 0; i < s.plane.corrupt_overrides.size(); ++i) {
      net::FaultScript c = s;
      c.plane.corrupt_overrides.erase(c.plane.corrupt_overrides.begin() +
                                      static_cast<std::ptrdiff_t>(i));
      if (fails(repro.spec, c)) { repro.script = c; changed = true; break; }
    }
    if (changed) continue;
    if (s.plane.corrupt_rate > 0) {
      net::FaultScript c = s;
      c.plane.corrupt_rate = 0;
      if (fails(repro.spec, c)) { repro.script = c; changed = true; continue; }
    }
    if (s.straggler_factor > 1.0) {
      net::FaultScript c = s;
      c.straggler_factor = 1.0;
      if (fails(repro.spec, c)) { repro.script = c; changed = true; }
    }
  }

  // Phase 2 — value shrinking on what remains: halve fault windows and
  // repeat counts while the violation survives.
  for (bool shrunk = true; shrunk;) {
    shrunk = false;
    auto& s = repro.script;
    for (std::size_t i = 0; i < s.plane.link_faults.size(); ++i) {
      net::FaultScript c = s;
      auto& l = c.plane.link_faults[i];
      if (l.repeats > 1) {
        l.repeats = l.repeats / 2;
        if (fails(repro.spec, c)) { repro.script = c; shrunk = true; break; }
        c = s;
      }
      auto& l2 = c.plane.link_faults[i];
      if (l2.duration > 1e-6) {
        l2.duration = l2.duration / 2;
        if (fails(repro.spec, c)) { repro.script = c; shrunk = true; break; }
      }
    }
    if (shrunk) continue;
    for (std::size_t i = 0; i < s.plane.node_faults.size(); ++i) {
      net::FaultScript c = s;
      auto& n = c.plane.node_faults[i];
      if (n.duration > 1e-6) {
        n.duration = n.duration / 2;
        if (fails(repro.spec, c)) { repro.script = c; shrunk = true; break; }
      }
    }
    if (shrunk) continue;
    if (s.plane.corrupt_rate > 1e-6) {
      net::FaultScript c = s;
      c.plane.corrupt_rate = c.plane.corrupt_rate / 2;
      if (fails(repro.spec, c)) { repro.script = c; shrunk = true; }
    }
  }

  // Phase 3 — shrink the experiment shape: fewer epochs, smaller world,
  // smaller batch. Each knob halves toward its floor while still failing.
  auto try_spec = [&](ExperimentSpec cand) {
    if (fails(cand, repro.script)) { repro.spec = std::move(cand); return true; }
    return false;
  };
  for (bool shrunk = true; shrunk;) {
    shrunk = false;
    if (repro.spec.epochs > 1) {
      ExperimentSpec c = repro.spec;
      c.epochs = std::max<std::uint64_t>(1, c.epochs / 2);
      shrunk = try_spec(std::move(c));
      if (shrunk) continue;
    }
    if (repro.spec.world > 2) {
      ExperimentSpec c = repro.spec;
      c.world = std::max(2, c.world / 2);
      shrunk = try_spec(std::move(c));
      if (shrunk) continue;
    }
    if (repro.spec.batch > 8) {
      ExperimentSpec c = repro.spec;
      c.batch = std::max<std::uint64_t>(8, c.batch / 2);
      shrunk = try_spec(std::move(c));
    }
  }

  // The stored violations must describe the *final* pair; re-run once if
  // the last probe was a passing candidate.
  const ChaosCellResult last = run_chaos_cell(repro.spec, repro.script, cfg);
  ++repro.probes;
  repro.violations = last.violations;
  return repro;
}

}  // namespace trimgrad::ddp
