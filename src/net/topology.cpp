#include "net/topology.h"

#include <string>

namespace trimgrad::net {

std::vector<NodeId> LeafSpine::all_hosts() const {
  std::vector<NodeId> out;
  for (const auto& rack : hosts) out.insert(out.end(), rack.begin(), rack.end());
  return out;
}

Dumbbell build_dumbbell(Simulator& sim, std::size_t n_left,
                        std::size_t n_right, const FabricConfig& cfg) {
  Dumbbell d;
  auto& sl = sim.add_node<SwitchNode>("switch-L");
  auto& sr = sim.add_node<SwitchNode>("switch-R");
  d.left_switch = sl.id();
  d.right_switch = sr.id();

  // Bottleneck link between the two switches.
  const auto [sl_core, sr_core] =
      sim.connect(sl.id(), sr.id(), cfg.core_link, cfg.switch_queue);

  for (std::size_t i = 0; i < n_left; ++i) {
    auto& h = sim.add_node<Host>("hL" + std::to_string(i));
    const auto [h_port, sw_port] = sim.connect(
        h.id(), sl.id(), cfg.edge_link, cfg.host_queue, cfg.switch_queue);
    (void)h_port;
    d.left_hosts.push_back(h.id());
    sl.set_route(h.id(), sw_port);
  }
  for (std::size_t i = 0; i < n_right; ++i) {
    auto& h = sim.add_node<Host>("hR" + std::to_string(i));
    const auto [h_port, sw_port] = sim.connect(
        h.id(), sr.id(), cfg.edge_link, cfg.host_queue, cfg.switch_queue);
    (void)h_port;
    d.right_hosts.push_back(h.id());
    sr.set_route(h.id(), sw_port);
  }
  // Anything not local goes across the bottleneck.
  sl.set_default_route(sl_core);
  sr.set_default_route(sr_core);
  return d;
}

LeafSpine build_leaf_spine(Simulator& sim, std::size_t n_leaves,
                           std::size_t n_spines, std::size_t hosts_per_leaf,
                           const FabricConfig& cfg) {
  LeafSpine t;
  for (std::size_t s = 0; s < n_spines; ++s) {
    auto& spine = sim.add_node<SwitchNode>("spine" + std::to_string(s));
    t.spines.push_back(spine.id());
  }
  for (std::size_t l = 0; l < n_leaves; ++l) {
    auto& leaf = sim.add_node<SwitchNode>("leaf" + std::to_string(l));
    t.leaves.push_back(leaf.id());
  }

  // Leaf <-> spine mesh. Remember the port indices for routing.
  // spine_ports[s][l] = port on spine s toward leaf l;
  // leaf_uplinks[l][s] = port on leaf l toward spine s.
  std::vector<std::vector<std::size_t>> spine_ports(n_spines);
  std::vector<std::vector<std::size_t>> leaf_uplinks(n_leaves);
  for (std::size_t l = 0; l < n_leaves; ++l) {
    for (std::size_t s = 0; s < n_spines; ++s) {
      const auto [leaf_port, spine_port] = sim.connect(
          t.leaves[l], t.spines[s], cfg.core_link, cfg.switch_queue);
      leaf_uplinks[l].push_back(leaf_port);
      spine_ports[s].push_back(spine_port);
    }
  }

  // Hosts under each leaf.
  t.hosts.resize(n_leaves);
  for (std::size_t l = 0; l < n_leaves; ++l) {
    auto& leaf = static_cast<SwitchNode&>(sim.node(t.leaves[l]));
    for (std::size_t h = 0; h < hosts_per_leaf; ++h) {
      // Built up with += (not operator+ chaining) to sidestep GCC 12's
      // false-positive -Wrestrict on `literal + to_string(...)` (PR 105651).
      std::string host_name = "h";
      host_name += std::to_string(l);
      host_name += '-';
      host_name += std::to_string(h);
      auto& host = sim.add_node<Host>(std::move(host_name));
      const auto [host_port, leaf_port] = sim.connect(
          host.id(), t.leaves[l], cfg.edge_link, cfg.host_queue,
          cfg.switch_queue);
      (void)host_port;
      t.hosts[l].push_back(host.id());
      leaf.set_route(host.id(), leaf_port);
      // Every spine knows which leaf owns this host.
      for (std::size_t s = 0; s < n_spines; ++s) {
        auto& spine = static_cast<SwitchNode&>(sim.node(t.spines[s]));
        spine.set_route(host.id(), spine_ports[s][l]);
      }
    }
  }
  // Non-local traffic ECMPs up to the spines.
  for (std::size_t l = 0; l < n_leaves; ++l) {
    auto& leaf = static_cast<SwitchNode&>(sim.node(t.leaves[l]));
    for (std::size_t other = 0; other < n_leaves; ++other) {
      if (other == l) continue;
      for (NodeId host : t.hosts[other]) {
        leaf.set_ecmp_route(host, leaf_uplinks[l]);
      }
    }
  }
  return t;
}

}  // namespace trimgrad::net
