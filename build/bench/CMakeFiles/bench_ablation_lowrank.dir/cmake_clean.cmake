file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lowrank.dir/bench_ablation_lowrank.cpp.o"
  "CMakeFiles/bench_ablation_lowrank.dir/bench_ablation_lowrank.cpp.o.d"
  "bench_ablation_lowrank"
  "bench_ablation_lowrank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lowrank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
