# CMake generated Testfile for 
# Source directory: /root/repo/src/ddp
# Build directory: /root/repo/build/src/ddp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
