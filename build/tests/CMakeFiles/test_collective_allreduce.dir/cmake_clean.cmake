file(REMOVE_RECURSE
  "CMakeFiles/test_collective_allreduce.dir/collective/allreduce_test.cpp.o"
  "CMakeFiles/test_collective_allreduce.dir/collective/allreduce_test.cpp.o.d"
  "test_collective_allreduce"
  "test_collective_allreduce.pdb"
  "test_collective_allreduce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
