#include "core/hadamard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

TEST(Pow2Helpers, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1u << 15));
  EXPECT_FALSE(is_pow2((1u << 15) + 1));
}

TEST(Pow2Helpers, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Fwht, SizeTwoIsButterfly) {
  std::vector<float> v = {3.0f, 1.0f};
  fwht_inplace(v);
  EXPECT_FLOAT_EQ(v[0], 4.0f);
  EXPECT_FLOAT_EQ(v[1], 2.0f);
}

TEST(Fwht, MatchesNaiveHadamardMatrix) {
  // H_4 (unnormalized, Sylvester construction) applied to e_2.
  std::vector<float> v = {0, 0, 1, 0};
  fwht_inplace(v);
  // Column 2 of H_4 = [1, 1, -1, -1].
  EXPECT_FLOAT_EQ(v[0], 1.0f);
  EXPECT_FLOAT_EQ(v[1], 1.0f);
  EXPECT_FLOAT_EQ(v[2], -1.0f);
  EXPECT_FLOAT_EQ(v[3], -1.0f);
}

TEST(Fwht, OrthonormalIsInvolution) {
  auto v = random_vec(256, 1);
  auto orig = v;
  fwht_orthonormal_inplace(v);
  fwht_orthonormal_inplace(v);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], orig[i], 1e-4);
}

TEST(Fwht, OrthonormalPreservesL2Norm) {
  for (std::size_t n : {2u, 16u, 256u, 4096u}) {
    auto v = random_vec(n, n);
    const double before = l2_norm(v);
    fwht_orthonormal_inplace(v);
    EXPECT_NEAR(l2_norm(v), before, before * 1e-5) << "n=" << n;
  }
}

TEST(Rht, InverseRecoversInput) {
  for (std::size_t n : {4u, 64u, 1024u, 32768u}) {
    auto v = random_vec(n, 7 + n);
    auto orig = v;
    Xoshiro256 fwd(123), inv(123);
    rht_inplace(v, fwd);
    irht_inplace(v, inv);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(v[i], orig[i], 1e-3) << "n=" << n << " i=" << i;
  }
}

TEST(Rht, PreservesL2Norm) {
  auto v = random_vec(2048, 5);
  const double before = l2_norm(v);
  Xoshiro256 rng(55);
  rht_inplace(v, rng);
  EXPECT_NEAR(l2_norm(v), before, before * 1e-5);
}

TEST(Rht, RotatedCoordinatesAreCenteredNearZero) {
  // §3.2: after RHT the coordinates are symmetrically centered around zero
  // — even for a heavily skewed input.
  std::vector<float> v(4096, 1.0f);  // all-positive, nonzero mean
  Xoshiro256 rng(9);
  rht_inplace(v, rng);
  EXPECT_NEAR(mean(v), 0.0, 0.05 * l2_norm(v) / std::sqrt(4096.0));
}

TEST(Rht, DifferentSeedsProduceDifferentRotations) {
  auto v1 = random_vec(128, 3);
  auto v2 = v1;
  Xoshiro256 a(1), b(2);
  rht_inplace(v1, a);
  rht_inplace(v2, b);
  double max_diff = 0;
  for (std::size_t i = 0; i < v1.size(); ++i)
    max_diff = std::max(max_diff, std::fabs(static_cast<double>(v1[i]) - v2[i]));
  EXPECT_GT(max_diff, 1e-3);
}

TEST(RowSplit, ExactMultiple) {
  const RowSplit s = make_row_split(64, 16);
  EXPECT_EQ(s.n_rows, 4u);
  EXPECT_EQ(s.tail_padded, 0u);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(s.padded_len(r), 16u);
    EXPECT_EQ(s.real_len(r), 16u);
    EXPECT_EQ(s.offset(r), r * 16);
  }
}

TEST(RowSplit, TailRowPadsToPow2) {
  const RowSplit s = make_row_split(40, 16);  // 2 full rows + 8-entry tail
  EXPECT_EQ(s.n_rows, 3u);
  EXPECT_EQ(s.tail_padded, 8u);
  EXPECT_EQ(s.padded_len(2), 8u);
  EXPECT_EQ(s.real_len(2), 8u);
}

TEST(RowSplit, TailShorterThanPow2Pads) {
  const RowSplit s = make_row_split(21, 16);  // tail of 5 -> padded to 8
  EXPECT_EQ(s.n_rows, 2u);
  EXPECT_EQ(s.padded_len(1), 8u);
  EXPECT_EQ(s.real_len(1), 5u);
}

TEST(RowSplit, EmptyInput) {
  const RowSplit s = make_row_split(0, 16);
  EXPECT_EQ(s.n_rows, 0u);
}

TEST(RowSplit, DefaultRowLenMatchesPaper) {
  const RowSplit s = make_row_split(1 << 20);
  EXPECT_EQ(s.row_len, std::size_t{1} << 15);  // 32768-entry rows, §3.2
  EXPECT_EQ(s.n_rows, 32u);
}

TEST(ExtractPaddedRow, CopiesAndZeroPads) {
  std::vector<float> flat = {1, 2, 3, 4, 5};
  const RowSplit s = make_row_split(flat.size(), 4);
  auto r0 = extract_padded_row(flat, s, 0);
  ASSERT_EQ(r0.size(), 4u);
  EXPECT_FLOAT_EQ(r0[0], 1);
  EXPECT_FLOAT_EQ(r0[3], 4);
  auto r1 = extract_padded_row(flat, s, 1);
  ASSERT_EQ(r1.size(), 1u);  // tail of 1 pads to pow2(1)=1
  EXPECT_FLOAT_EQ(r1[0], 5);
}

TEST(ExtractPaddedRow, IntoVariantMatchesAndReusesCapacity) {
  std::vector<float> flat = {1, 2, 3, 4, 5};
  const RowSplit s = make_row_split(flat.size(), 4);
  std::vector<float> scratch(64, -7.0f);  // stale garbage must be cleared
  const float* before = scratch.data();
  extract_padded_row_into(flat, s, 0, scratch);
  EXPECT_EQ(scratch.data(), before);  // shrink reuses the allocation
  EXPECT_EQ(extract_padded_row(flat, s, 0), scratch);
  extract_padded_row_into(flat, s, 1, scratch);
  EXPECT_EQ(extract_padded_row(flat, s, 1), scratch);
}

TEST(ExtractPaddedRow, IntoVariantZeroPadsTail) {
  std::vector<float> flat(11, 2.5f);
  const RowSplit s = make_row_split(flat.size(), 8);
  std::vector<float> scratch{9.0f, 9.0f};  // too small: must grow
  extract_padded_row_into(flat, s, 1, scratch);
  ASSERT_EQ(scratch.size(), 4u);  // 3 real values pad to pow2(3)=4
  EXPECT_FLOAT_EQ(scratch[0], 2.5f);
  EXPECT_FLOAT_EQ(scratch[2], 2.5f);
  EXPECT_FLOAT_EQ(scratch[3], 0.0f);
}

class FwhtSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FwhtSizeSweep, InvolutionHoldsAcrossSizes) {
  const std::size_t n = GetParam();
  auto v = random_vec(n, 1000 + n);
  auto orig = v;
  fwht_orthonormal_inplace(v);
  fwht_orthonormal_inplace(v);
  double worst = 0;
  for (std::size_t i = 0; i < n; ++i)
    worst = std::max(worst, std::fabs(static_cast<double>(v[i]) - orig[i]));
  EXPECT_LT(worst, 1e-3) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FwhtSizeSweep,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 512, 2048,
                                           8192, 32768));

}  // namespace
}  // namespace trimgrad::core
