#include "ml/tensor.h"

namespace trimgrad::ml {

void gemm_accumulate(const float* a, const float* b, float* c, std::size_t m,
                     std::size_t k, std::size_t n) noexcept {
  // i-k-j loop order: unit-stride inner loop over both B and C.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = a[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_at_b(const float* a, const float* b, float* c, std::size_t k,
               std::size_t m, std::size_t n) noexcept {
  // C(m×n) += Aᵀ·B with A stored k×m.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) noexcept {
  // C(m×n) += A(m×k)·Bᵀ with B stored n×k.
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

}  // namespace trimgrad::ml
