# Empty compiler generated dependencies file for adaptive_precision.
# This may be replaced when dependencies are built.
