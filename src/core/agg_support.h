// Payload access for in-network aggregation (paper §1's INA context).
//
// ATP/SwitchML-style switches aggregate gradient payloads in flight; THC
// showed RHT-rotated payloads are the natural representation because
// rotation is linear: summing rotated coordinates then inverse-rotating
// once equals summing the gradients. These helpers let a switch read an
// *untrimmed* packet's coordinate values and rebuild an aggregated packet
// with the same header/layout.
//
// Trimmed packets are not aggregatable without the reliable-channel scales
// (exactly the compression/INA co-design gap the paper's §1 points at), so
// the functions report failure for them and the switch falls back to plain
// forwarding.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/packet.h"

namespace trimgrad::core {

/// The coordinate values carried by an untrimmed packet: raw floats for
/// kBaseline, the original values for kSign, the *rotated* coordinates for
/// kRHT. Returns nullopt for trimmed packets and for SQ/SD (their heads are
/// stochastic — tails reassemble values, but aggregation would break the
/// head/tail consistency, so they are not aggregatable either).
std::optional<std::vector<float>> packet_values(const GradientPacket& pkt);

/// Rebuild a packet with `tmpl`'s header/layout but `values` as payload
/// (values.size() must equal tmpl.n_coords). Only valid for schemes
/// packet_values supports.
GradientPacket rebuild_packet(const GradientPacket& tmpl,
                              std::span<const float> values);

/// True if packets of this scheme can be aggregated in-network.
bool is_aggregatable(Scheme scheme) noexcept;

}  // namespace trimgrad::core
