// Output-queued switch with static routing and optional ECMP groups.
//
// Forwarding is a destination-indexed table built by the topology helpers.
// Each egress port owns its queue (drop-tail / trim / ECN per QueueConfig),
// so trimming is a purely local decision at the congested hop — exactly the
// deployment model of §1 (Tofino / Trident 4 / Spectrum 2 support it today).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/sim.h"

namespace trimgrad::net {

class SwitchNode : public Node {
 public:
  SwitchNode(Simulator& sim, NodeId id, std::string name)
      : Node(sim, id, std::move(name)) {}

  /// Route frames for `dst` out of `port_idx`.
  void set_route(NodeId dst, std::size_t port_idx) {
    routes_[dst] = {port_idx};
  }

  /// ECMP: frames for `dst` hash (by flow id) across `port_idxs`.
  void set_ecmp_route(NodeId dst, std::vector<std::size_t> port_idxs) {
    routes_[dst] = std::move(port_idxs);
  }

  /// Fallback port when no table entry matches (e.g. leaf uplink).
  void set_default_route(std::size_t port_idx) { default_group_ = {port_idx}; }

  /// ECMP fallback: unmatched frames hash across `port_idxs` (fat-tree
  /// edge/agg uplinks, where per-remote-host entries would be wasteful).
  void set_default_ecmp(std::vector<std::size_t> port_idxs) {
    default_group_ = std::move(port_idxs);
  }

  void on_frame(Frame frame) override;

  /// The exact egress port the datapath would pick for (dst, flow_id),
  /// including the ECMP hash; -1 if the frame would be unroutable. This is
  /// the hook the topology invariant tests use to walk paths.
  std::ptrdiff_t egress_for(NodeId dst, std::uint32_t flow_id) const noexcept;

  /// Route table entry for `dst` (ECMP group), or nullptr if none.
  const std::vector<std::size_t>* route_ports(NodeId dst) const noexcept {
    const auto it = routes_.find(dst);
    return it == routes_.end() ? nullptr : &it->second;
  }

  std::size_t route_count() const noexcept { return routes_.size(); }

  /// Frames that arrived with no usable route (counted, then dropped).
  std::uint64_t unroutable() const noexcept { return unroutable_; }

 private:
  std::unordered_map<NodeId, std::vector<std::size_t>> routes_;
  std::vector<std::size_t> default_group_;
  std::uint64_t unroutable_ = 0;
};

}  // namespace trimgrad::net
