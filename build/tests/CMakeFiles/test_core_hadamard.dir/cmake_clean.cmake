file(REMOVE_RECURSE
  "CMakeFiles/test_core_hadamard.dir/core/hadamard_test.cpp.o"
  "CMakeFiles/test_core_hadamard.dir/core/hadamard_test.cpp.o.d"
  "test_core_hadamard"
  "test_core_hadamard.pdb"
  "test_core_hadamard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_hadamard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
