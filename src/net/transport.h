// Transport endpoints over the simulated fabric.
//
// Two senders implement the paper's comparison:
//
//  * Reliable (the NCCL-stand-in baseline): strict delivery semantics.
//    Every packet must arrive in full. Drops are recovered by timeout and
//    triple-duplicate-ACK fast retransmit; a trimmed arrival is useless to
//    this transport (the payload is gone), so the receiver NACKs it for
//    immediate retransmission. Under congestion this is the transport whose
//    retransmission storms create the stragglers of §1.
//
//  * TrimAware: a trimmed arrival is an *acceptable delivery* — the decoder
//    will reconstruct the coordinate from the 1-bit head (§2/§3). The
//    receiver ACKs it like a full arrival and the sender never retransmits.
//    Only outright drops (header-queue overflow, rare) are retransmitted.
//
// Both use a fixed window (BDP-sized by the caller) — congestion response
// is the switch's trim decision, which is the paper's architectural point.
// The flow state machine itself (RTO backoff, budgets, deadline, stats)
// lives in net/flow_core.h and is shared with the pull and ECN transports.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/flow_core.h"
#include "net/host.h"
#include "net/sim.h"

namespace trimgrad::net {

struct TransportConfig {
  std::size_t window = 64;       ///< max packets in flight
  SimTime rto = 200e-6;          ///< initial retransmission timeout
  SimTime rto_cap = 5e-3;        ///< exponential backoff ceiling
  bool trimmed_is_delivered = true;  ///< TrimAware: true; Reliable: false
  /// Give-up knobs: without them a flow crossing a dead link re-arms its
  /// RTO timer forever and the event queue never drains. 0 disables each.
  std::size_t retransmit_budget = 0;  ///< max retransmissions before failing
  SimTime flow_deadline = 0;          ///< max flow age before failing

  static TransportConfig reliable() {
    TransportConfig cfg;
    cfg.trimmed_is_delivered = false;
    return cfg;
  }
  static TransportConfig trim_aware() { return TransportConfig{}; }
};

/// Sender endpoint for one flow. Lives at the source host; receives the
/// flow's ACK/NACK frames through the host's demux. Fixed-window clocking
/// over the shared FlowCore state machine, plus triple-duplicate
/// cumulative-ACK fast retransmit.
class Sender : public FlowEndpoint {
 public:
  Sender(Host& host, NodeId dst, std::uint32_t flow_id, TransportConfig cfg);
  ~Sender() override;

  /// Begin transmitting. One message at a time per Sender; `on_complete`
  /// fires exactly once: when every packet has been acknowledged (full or
  /// trimmed), or when the flow *fails* (stats().failed — retransmit budget
  /// or flow deadline exhausted, or abort()ed).
  void send_message(std::vector<SendItem> items,
                    std::function<void(const FlowStats&)> on_complete);

  /// Give up on the in-flight message now (deadline enforcement by an
  /// owning layer, e.g. a collective round). No-op when not active.
  void abort();

  void on_frame(Frame frame) override;

  const FlowStats& stats() const noexcept { return core_.stats(); }
  bool active() const noexcept { return core_.active(); }
  std::uint32_t flow_id() const noexcept { return flow_id_; }
  /// Current backed-off RTO (tests pin the rto_cap ceiling through this).
  SimTime current_rto() const noexcept { return core_.current_rto(); }

 private:
  void try_send_new();

  Host& host_;
  std::uint32_t flow_id_;
  TransportConfig cfg_;
  FlowCore core_;

  std::size_t sent_unacked_ = 0;
  std::uint32_t last_cum_ = 0;
  int dup_cum_ = 0;
};

/// Receiver endpoint for one flow. Lives at the destination host.
class Receiver : public FlowEndpoint {
 public:
  /// `on_data` fires once per newly delivered packet (full or trimmed) with
  /// the arriving frame — the collective layer harvests cargo here.
  Receiver(Host& host, NodeId peer, std::uint32_t flow_id,
           std::size_t expected_packets, TransportConfig cfg,
           std::function<void(const Frame&)> on_data = {},
           std::function<void(const ReceiverStats&)> on_complete = {});
  ~Receiver() override;

  void on_frame(Frame frame) override;

  const ReceiverStats& stats() const noexcept { return core_.stats(); }
  bool complete() const noexcept { return core_.complete(); }

 private:
  Host& host_;
  std::uint32_t flow_id_;
  ReceiverCore core_;
};

}  // namespace trimgrad::net
