// Per-round compression control plane (paper §5.3, closed).
//
// A run used to pin one codec and one tail depth for its whole life; the
// controller the paper implies — re-tune compression against live congestion
// signals, just in time — never closed the loop. This module is that loop's
// decision layer:
//
//  * `NetFeedback` — a deterministic per-round snapshot of what the fabric
//    did to the last round's packets (trims, drops, retransmits, corrupt
//    NACKs, DCTCP alpha, queue-depth pressure), assembled by the collective
//    Channel from counters the system already emits. Every field is derived
//    from integer counters or sequential-phase gauges, so the snapshot is
//    bit-identical across TRIMGRAD_THREADS.
//  * `CompressionPolicy` — decides, before each round, which registered
//    packet-train codec to encode with and at what tail depth Q. Decisions
//    are pure functions of (policy state, round, feedback): two runs that
//    feed identical feedback replay identical decision sequences.
//  * `PolicyRegistry` — string-keyed factories, mirroring CodecRegistry /
//    TransportRegistry so an ExperimentSpec can validate `policy=` names
//    and error with the registered list:
//      - "fixed"     — the old behaviour: one codec, one Q, forever.
//      - "aimd-trim" — wraps core::AdaptiveQController: AIMD on observed
//        congestion pressure, targeting a small positive trim rate
//        ("slightly under-compress and over-send", §5.3).
//      - "schedule"  — scripted switches: "0:rht@31;8:sparsify@15" applies
//        each entry from its round onward (ablations, regression repros).
//
// Policy state serializes to a byte blob so checkpoints can capture the
// controller alongside optimizer/residual state and a restart replays the
// same decisions.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/adaptive.h"

namespace trimgrad::core {

/// What the network did to one round's traffic. Assembled by the Channel
/// (collective/channel.h) from per-delivery counters plus, on the fabric,
/// the metrics registry; consumed by CompressionPolicy::decide.
struct NetFeedback {
  std::uint64_t round = 0;        ///< the round this snapshot describes
  std::uint64_t packets = 0;      ///< data packets offered to the fabric
  std::uint64_t trimmed = 0;      ///< packets the switch/injector trimmed
  std::uint64_t dropped = 0;      ///< packets lost outright
  std::uint64_t retransmits = 0;  ///< reliable-transport resends
  std::uint64_t corrupt_nacks = 0;  ///< corrupt frames detected (NACKed)
  std::uint64_t flow_failures = 0;  ///< flows that gave up (budget/deadline)
  std::uint64_t wire_bytes = 0;
  double comm_s = 0.0;            ///< simulated comm time of the round
  double dctcp_alpha = 0.0;       ///< last net.ecn.alpha gauge, in [0, 1]
  /// Fraction of queue-depth samples at or above the hot buckets (>= 64 KiB)
  /// of net.queue.depth_bytes this round.
  double queue_depth_frac = 0.0;

  double trim_rate() const noexcept;
  double drop_rate() const noexcept;
  double retransmit_rate() const noexcept;
  /// Scalar congestion pressure in [0, 1]: trim + drop + retransmit rates
  /// plus half-weighted ECN alpha and queue-depth pressure, saturated.
  double pressure() const noexcept;

  friend bool operator==(const NetFeedback&, const NetFeedback&) = default;
};

/// Byte-exact little-endian serialization (doubles as IEEE-754 bit
/// patterns), appended to `out` — checkpoints carry the last feedback so a
/// restart resumes the control loop mid-conversation.
void append_feedback(std::vector<std::uint8_t>& out, const NetFeedback& fb);
/// Inverse of append_feedback; throws std::runtime_error on truncation.
NetFeedback parse_feedback(std::span<const std::uint8_t> bytes);

/// One decision: the registered packet-train codec to encode the next round
/// with, and the tail depth to encode at.
struct PolicyDecision {
  std::string codec = "rht";
  unsigned q_bits = 31;

  friend bool operator==(const PolicyDecision&, const PolicyDecision&) =
      default;
};

/// "rht@31" — for logs, decision digests, and schedule scripts.
std::string to_string(const PolicyDecision& d);

/// Knobs consumed by the built-in policies. `codec`/`q_bits` seed the
/// action space: the fixed policy returns them verbatim, aimd-trim keeps
/// the codec and adapts Q, schedule falls back to them before its first
/// entry.
struct PolicyConfig {
  std::string policy = "fixed";  ///< PolicyRegistry name
  std::string codec = "rht";     ///< base packet-train codec name
  unsigned q_bits = 31;          ///< base tail depth
  AdaptiveQConfig aimd{};        ///< aimd-trim controller knobs
  /// schedule policy script: ';'-separated "round:codec@q" entries, each
  /// applying from its round onward. Example: "0:rht@31;8:sparsify@15".
  std::string schedule;
};

class CompressionPolicy {
 public:
  virtual ~CompressionPolicy() = default;

  virtual const char* name() const noexcept = 0;

  /// Decide the codec for `round`. `prev` is the feedback of round − 1
  /// (a zeroed snapshot for round 0). May mutate controller state; must be
  /// deterministic in (state, round, prev).
  virtual PolicyDecision decide(std::uint64_t round,
                                const NetFeedback& prev) = 0;

  /// Serialize mutable controller state. Stateless policies return {}.
  virtual std::vector<std::uint8_t> state() const { return {}; }
  /// Restore serialized state; throws std::runtime_error on a malformed
  /// blob (same loud-failure discipline as ddp::Checkpoint).
  virtual void restore(std::span<const std::uint8_t> blob);
};

class PolicyRegistry {
 public:
  struct PolicyInfo {
    std::string name;
    const char* summary = "";
    std::unique_ptr<CompressionPolicy> (*make)(const PolicyConfig&) = nullptr;
  };

  /// The process-wide registry with the built-in policies.
  static const PolicyRegistry& global();

  /// nullptr when `name` is not registered.
  const PolicyInfo* find(const std::string& name) const;
  /// Throws std::invalid_argument listing the registered names.
  const PolicyInfo& at(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;

  /// Construct the policy named by cfg.policy. Validates cfg.codec (and
  /// every codec a schedule script names) against CodecRegistry — throws
  /// std::invalid_argument listing registered names on any unknown name.
  std::unique_ptr<CompressionPolicy> make(const PolicyConfig& cfg) const;

  void add(PolicyInfo info);

 private:
  std::vector<PolicyInfo> policies_;
};

}  // namespace trimgrad::core
