#include "core/bitpack.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/prng.h"

namespace trimgrad::core {
namespace {

TEST(BytesForBits, RoundsUp) {
  EXPECT_EQ(bytes_for_bits(0), 0u);
  EXPECT_EQ(bytes_for_bits(1), 1u);
  EXPECT_EQ(bytes_for_bits(8), 1u);
  EXPECT_EQ(bytes_for_bits(9), 2u);
  EXPECT_EQ(bytes_for_bits(365), 46u);  // the §2 head region for n=365, P=1
}

TEST(BitWriter, SingleBitsPackMsbFirst) {
  BitWriter w;
  w.put_bit(true);
  w.put_bit(false);
  w.put_bit(true);
  auto buf = std::move(w).finish();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0b10100000);
}

TEST(BitWriter, MultiBitValueSpansBytes) {
  BitWriter w;
  w.put(0x1ff, 9);  // 9 ones
  auto buf = std::move(w).finish();
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0xff);
  EXPECT_EQ(buf[1], 0x80);
}

TEST(BitWriter, MasksValueToWidth) {
  BitWriter w;
  w.put(0xffffffffffffffffULL, 4);
  auto buf = std::move(w).finish();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0xf0);
}

TEST(BitWriter, BitCountTracksExactly) {
  BitWriter w;
  w.put(1, 31);
  w.put(1, 31);
  w.put_bit(true);
  EXPECT_EQ(w.bit_count(), 63u);
  EXPECT_EQ(w.byte_count(), 8u);
}

TEST(BitRoundTrip, SingleBits) {
  BitWriter w;
  std::vector<bool> bits = {true, false, false, true, true, false, true,
                            true, true,  false, false, true};
  for (bool b : bits) w.put_bit(b);
  auto buf = std::move(w).finish();
  BitReader r(buf);
  for (bool b : bits) EXPECT_EQ(r.get_bit(), b);
}

TEST(BitRoundTrip, ThirtyOneBitTails) {
  // The exact width used by every Q=31 tail region.
  BitWriter w;
  std::vector<std::uint32_t> vals = {0, 1, 0x7fffffff, 0x40000000, 12345678};
  for (auto v : vals) w.put(v, 31);
  auto buf = std::move(w).finish();
  BitReader r(buf);
  for (auto v : vals) EXPECT_EQ(r.get(31), v);
}

TEST(BitRoundTrip, RandomizedMixedWidths) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, unsigned>> items;
    for (int i = 0; i < 200; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.below(64));
      std::uint64_t v = rng();
      if (width < 64) v &= (std::uint64_t{1} << width) - 1;
      items.emplace_back(v, width);
      w.put(v, width);
    }
    auto buf = std::move(w).finish();
    BitReader r(buf);
    for (const auto& [v, width] : items) EXPECT_EQ(r.get(width), v);
  }
}

TEST(BitRoundTrip, ByteAlignedWidthsTakeFastPath) {
  // Byte-aligned cursor + multiple-of-8 width is the bulk fast path; the
  // wire bytes must match what the bit-at-a-time slow path produced.
  BitWriter fast;
  std::vector<std::pair<std::uint64_t, unsigned>> items = {
      {0xab, 8},       {0xbeef, 16},         {0xdeadbeef, 32},
      {0x0123456789abcdefULL, 64},           {0xcafef00d, 40},
      {0x7f, 8},       {0x123456, 24},       {0xffffffffffffffffULL, 56},
  };
  for (const auto& [v, width] : items) fast.put(v, width);
  BitWriter slow;
  for (const auto& [v, width] : items) {
    for (unsigned i = width; i != 0; --i) slow.put_bit((v >> (i - 1)) & 1);
  }
  const auto fast_buf = std::move(fast).finish();
  const auto slow_buf = std::move(slow).finish();
  EXPECT_EQ(fast_buf, slow_buf);
  BitReader r(fast_buf);
  for (const auto& [v, width] : items) {
    const std::uint64_t mask =
        width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
    EXPECT_EQ(r.get(width), v & mask);
  }
}

TEST(BitRoundTrip, UnalignedPrefixForcesSlowPathThenRealigns) {
  // A 3-bit prefix leaves the cursor unaligned, so the following 8/16-bit
  // writes must go through the slow path; a 5-bit pad then realigns the
  // cursor so the final 32-bit value is eligible for the fast path again.
  BitWriter w;
  w.put(0b101, 3);
  w.put(0xa5, 8);
  w.put(0x1234, 16);
  w.put(0, 5);
  w.put(0xfeedc0de, 32);
  auto buf = std::move(w).finish();
  BitReader r(buf);
  EXPECT_EQ(r.get(3), 0b101u);
  EXPECT_EQ(r.get(8), 0xa5u);
  EXPECT_EQ(r.get(16), 0x1234u);
  EXPECT_EQ(r.get(5), 0u);
  EXPECT_EQ(r.get(32), 0xfeedc0deu);
}

TEST(BitRoundTrip, AlignedAndUnalignedStreamsAgreeRandomized) {
  // Property check across both paths: any interleaving of widths decodes
  // to what was written, and matches a pure-slow-path encoding bit for bit.
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    BitWriter fast, slow;
    std::vector<std::pair<std::uint64_t, unsigned>> items;
    for (int i = 0; i < 300; ++i) {
      // Bias toward byte-multiple widths so aligned runs actually occur.
      const unsigned width = (i % 3 == 0)
                                 ? 8u * (1 + static_cast<unsigned>(rng.below(8)))
                                 : 1 + static_cast<unsigned>(rng.below(64));
      std::uint64_t v = rng();
      if (width < 64) v &= (std::uint64_t{1} << width) - 1;
      items.emplace_back(v, width);
      fast.put(v, width);
      for (unsigned j = width; j != 0; --j) slow.put_bit((v >> (j - 1)) & 1);
    }
    const auto fast_buf = std::move(fast).finish();
    const auto slow_buf = std::move(slow).finish();
    ASSERT_EQ(fast_buf, slow_buf) << "trial " << trial;
    BitReader r(fast_buf);
    for (const auto& [v, width] : items) ASSERT_EQ(r.get(width), v);
  }
}

TEST(BitReader, SkipAdvancesCursor) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0xab, 8);
  auto buf = std::move(w).finish();
  BitReader r(buf);
  r.skip(3);
  EXPECT_EQ(r.get(8), 0xabu);
}

TEST(BitReader, BitsRemainingCountsDown) {
  std::vector<std::uint8_t> data(4, 0);
  BitReader r(data);
  EXPECT_EQ(r.bits_remaining(), 32u);
  r.get(5);
  EXPECT_EQ(r.bits_remaining(), 27u);
}

TEST(BulkRuns, PutRunMatchesElementwisePutForAllWidths) {
  Xoshiro256 rng(0xb41);
  for (unsigned width = 1; width <= 32; ++width) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{16}, std::size_t{65}}) {
      std::vector<std::uint32_t> vals(n);
      const std::uint32_t mask =
          width == 32 ? 0xffffffffu : ((1u << width) - 1u);
      for (auto& v : vals) v = static_cast<std::uint32_t>(rng()) & mask;

      BitWriter bulk;
      bulk.put_run(vals.data(), vals.size(), width);
      BitWriter ref;
      for (std::uint32_t v : vals) ref.put(v, width);
      EXPECT_EQ(std::move(bulk).finish(), std::move(ref).finish())
          << "width=" << width << " n=" << n;
    }
  }
}

TEST(BulkRuns, MisalignedStartStillMatchesElementwise) {
  Xoshiro256 rng(0xb42);
  // A prefix of `lead` single bits puts the run start at every bit phase.
  for (unsigned lead = 0; lead < 8; ++lead) {
    std::vector<std::uint32_t> vals(33);
    for (auto& v : vals) v = static_cast<std::uint32_t>(rng()) & 0x7fffffffu;

    BitWriter bulk, ref;
    for (unsigned i = 0; i < lead; ++i) {
      bulk.put_bit(i & 1);
      ref.put_bit(i & 1);
    }
    bulk.put_run(vals.data(), vals.size(), 31);
    for (std::uint32_t v : vals) ref.put(v, 31);
    const auto bytes = std::move(bulk).finish();
    EXPECT_EQ(bytes, std::move(ref).finish()) << "lead=" << lead;

    BitReader r(bytes);
    r.skip(lead);
    std::vector<std::uint32_t> out(vals.size());
    r.get_run(out.data(), out.size(), 31);
    EXPECT_EQ(out, vals) << "lead=" << lead;
  }
}

TEST(BulkRuns, GetRunMatchesElementwiseGetAndCursor) {
  Xoshiro256 rng(0xb43);
  for (unsigned width : {1u, 7u, 8u, 24u, 31u, 32u}) {
    std::vector<std::uint32_t> vals(40);
    const std::uint32_t mask =
        width == 32 ? 0xffffffffu : ((1u << width) - 1u);
    for (auto& v : vals) v = static_cast<std::uint32_t>(rng()) & mask;
    BitWriter w;
    w.put_run(vals.data(), vals.size(), width);
    const auto bytes = std::move(w).finish();

    BitReader bulk(bytes), ref(bytes);
    std::vector<std::uint32_t> out(vals.size());
    bulk.get_run(out.data(), out.size(), width);
    for (std::size_t i = 0; i < vals.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<std::uint32_t>(ref.get(width)));
    }
    EXPECT_EQ(bulk.bits_remaining(), ref.bits_remaining()) << width;
  }
}

TEST(BulkBits, PutBits8AndGetBits8RoundTrip) {
  Xoshiro256 rng(0xb44);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{8},
                        std::size_t{9}, std::size_t{64}, std::size_t{367}}) {
    std::vector<std::uint8_t> bits(n);
    // Any nonzero byte counts as a set bit (bool-byte contract).
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng() % 3);

    BitWriter bulk, ref;
    bulk.put_bits8(bits.data(), bits.size());
    for (std::uint8_t b : bits) ref.put_bit(b != 0);
    const auto bytes = std::move(bulk).finish();
    EXPECT_EQ(bytes, std::move(ref).finish()) << "n=" << n;

    BitReader r(bytes);
    std::vector<std::uint8_t> out(n);
    r.get_bits8(out.data(), out.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], bits[i] ? 1 : 0) << "i=" << i;
    }
  }
}

TEST(BulkBits, MisalignedBitRunsFallBackCorrectly) {
  Xoshiro256 rng(0xb45);
  for (unsigned lead = 1; lead < 8; ++lead) {
    std::vector<std::uint8_t> bits(50);
    for (auto& b : bits) b = static_cast<std::uint8_t>(rng() & 1);
    BitWriter bulk, ref;
    for (unsigned i = 0; i < lead; ++i) {
      bulk.put_bit(true);
      ref.put_bit(true);
    }
    bulk.put_bits8(bits.data(), bits.size());
    for (std::uint8_t b : bits) ref.put_bit(b != 0);
    const auto bytes = std::move(bulk).finish();
    EXPECT_EQ(bytes, std::move(ref).finish()) << "lead=" << lead;

    BitReader r(bytes);
    r.skip(lead);
    std::vector<std::uint8_t> out(bits.size());
    r.get_bits8(out.data(), out.size());
    EXPECT_EQ(out, bits) << "lead=" << lead;
  }
}

TEST(FloatBits, RoundTripsExactly) {
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 3.14159f, -2.5e-30f, 1e30f}) {
    EXPECT_EQ(bits_float(float_bits(v)), v);
  }
}

TEST(FloatBits, SignBitIsBit31) {
  EXPECT_EQ(float_bits(-1.0f) >> 31, 1u);
  EXPECT_EQ(float_bits(1.0f) >> 31, 0u);
}

}  // namespace
}  // namespace trimgrad::core
