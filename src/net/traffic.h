// Cross-traffic generators (paper §1: "collisions between different traffic
// flows lead to occasional congestion ... or even packet loss").
//
//  * IncastPattern — N synchronized senders dump a fixed number of MTU
//    packets at one receiver: the canonical trigger for shallow-buffer
//    overflow and the scenario trimming was built for (NDP).
//  * PoissonTraffic — background flows arriving as a Poisson process with
//    a fixed flow size, between random host pairs; models the "other
//    applications" sharing the fabric.
//
// Both own their Sender/Receiver endpoints and report per-flow FlowStats.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/prng.h"
#include "net/transport.h"

namespace trimgrad::net {

/// Build `n_packets` MTU-sized SendItems, trimmable at `trim_size` (0 for
/// untrimmable baseline traffic).
std::vector<SendItem> make_bulk_items(std::size_t n_packets,
                                      std::size_t mtu_bytes,
                                      std::size_t trim_size);

/// One flow wiring: sender endpoint at src, receiver endpoint at dst.
/// Owns both; keeps FlowStats accessible after completion.
class ManagedFlow {
 public:
  ManagedFlow(Simulator& sim, NodeId src, NodeId dst, std::uint32_t flow_id,
              TransportConfig cfg, std::size_t n_packets,
              std::function<void(const Frame&)> on_data = {});

  /// Start at an absolute simulation time. The start event is anchored at
  /// the source host (Simulator::schedule_at), so flows launch correctly on
  /// partitioned fabrics: the event runs in the src host's domain.
  void start_at(SimTime when, std::vector<SendItem> items,
                std::function<void(const FlowStats&)> on_complete = {});

  const FlowStats& stats() const noexcept { return sender_->stats(); }
  const ReceiverStats& receiver_stats() const noexcept {
    return receiver_->stats();
  }
  std::uint32_t flow_id() const noexcept { return sender_->flow_id(); }
  bool done() const noexcept { return done_; }

 private:
  Simulator& sim_;
  NodeId src_;
  std::unique_ptr<Sender> sender_;
  std::unique_ptr<Receiver> receiver_;
  bool done_ = false;
};

/// N-to-1 incast: all senders start simultaneously.
class IncastPattern {
 public:
  struct Config {
    std::size_t packets_per_sender = 64;
    std::size_t mtu_bytes = 1500;
    std::size_t trim_size = 88;     ///< 0 disables trimming for these flows
    TransportConfig transport{};
    SimTime start = 0.0;
    std::uint32_t base_flow_id = 1000;
  };

  IncastPattern(Simulator& sim, std::vector<NodeId> senders, NodeId receiver,
                const Config& cfg);

  /// Stats after sim.run(): one entry per sender, same order.
  std::vector<FlowStats> flow_stats() const;
  /// Max/mean FCT across the fan-in — the straggler metric of §1.
  SimTime max_fct() const;
  double mean_fct() const;
  std::size_t completed_count() const;

 private:
  std::vector<std::unique_ptr<ManagedFlow>> flows_;
};

/// Poisson background load between random host pairs.
///
/// The whole arrival schedule (times, src/dst pairs, flow ids) is drawn at
/// construction and every flow's endpoints are created up front, with start
/// events anchored at their source hosts. The draw order matches the old
/// launch-as-you-go generator exactly (gap, src, dst, gap, ...), so the
/// schedule for a given seed is unchanged — but nothing mutates shared
/// state mid-run, which is what lets background load run on a partitioned
/// (sharded) fabric.
class PoissonTraffic {
 public:
  struct Config {
    double flows_per_sec = 1e5;
    std::size_t packets_per_flow = 16;
    std::size_t mtu_bytes = 1500;
    std::size_t trim_size = 0;      ///< background is plain traffic
    TransportConfig transport{};
    SimTime start = 0.0;
    SimTime stop = 1e-3;            ///< stop *launching* new flows after this
    std::uint32_t base_flow_id = 500000;
    std::uint64_t seed = 42;
  };

  PoissonTraffic(Simulator& sim, std::vector<NodeId> hosts, const Config& cfg);

  std::size_t launched() const noexcept { return flows_.size(); }
  std::size_t completed() const;
  /// FCTs of completed flows.
  std::vector<SimTime> fcts() const;

 private:
  Simulator& sim_;
  std::vector<NodeId> hosts_;
  Config cfg_;
  std::vector<std::unique_ptr<ManagedFlow>> flows_;
};

}  // namespace trimgrad::net
