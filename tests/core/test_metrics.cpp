// MetricsRegistry: registration semantics, histogram bucket edges, and the
// determinism contract — snapshots (and their JSON serialization) must be
// bit-identical no matter how many pool threads produced the increments.
#include "core/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/metrics_export.h"
#include "core/threadpool.h"

namespace trimgrad::core {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry reg;
  Counter c = reg.counter("a");
  c.add();
  c.add(41);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[0].value, 42u);
}

TEST(Metrics, DefaultConstructedHandlesAreNoOps) {
  Counter c;
  Gauge g;
  Histogram h;
  c.add();      // must not crash
  g.set(1.0);
  h.observe(1.0);
}

TEST(Metrics, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  Counter c1 = reg.counter("dup");
  Counter c2 = reg.counter("dup");
  c1.add(1);
  c2.add(2);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 3u);

  Histogram h1 = reg.histogram("h", {1.0, 2.0});
  Histogram h2 = reg.histogram("h", {99.0});  // bounds of first win
  h1.observe(0.5);
  h2.observe(0.5);
  const auto snap2 = reg.snapshot();
  ASSERT_EQ(snap2.histograms.size(), 1u);
  EXPECT_EQ(snap2.histograms[0].bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(snap2.histograms[0].counts[0], 2u);
}

TEST(Metrics, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  Gauge g = reg.gauge("g");
  g.set(1.5);
  g.set(-2.25);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -2.25);
}

TEST(Metrics, HistogramBucketEdgesUseLeSemantics) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("h", {0.0, 10.0, 100.0});
  h.observe(-5.0);   // <= 0        -> bucket 0
  h.observe(0.0);    // == 0 ("le") -> bucket 0
  h.observe(0.001);  // <= 10       -> bucket 1
  h.observe(10.0);   // == 10       -> bucket 1
  h.observe(99.9);   // <= 100      -> bucket 2
  h.observe(100.0);  // == 100      -> bucket 2
  h.observe(100.1);  // > last      -> overflow bucket 3
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hist = snap.histograms[0];
  ASSERT_EQ(hist.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[1], 2u);
  EXPECT_EQ(hist.counts[2], 2u);
  EXPECT_EQ(hist.counts[3], 1u);
  EXPECT_EQ(hist.total, 7u);
}

TEST(Metrics, SnapshotPreservesRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("zebra");
  reg.counter("apple");
  reg.gauge("mid");
  reg.histogram("tail", {1.0});
  reg.histogram("head", {1.0});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "zebra");
  EXPECT_EQ(snap.counters[1].name, "apple");
  ASSERT_EQ(snap.histograms.size(), 2u);
  EXPECT_EQ(snap.histograms[0].name, "tail");
  EXPECT_EQ(snap.histograms[1].name, "head");
}

TEST(Metrics, ResetValuesZeroesButKeepsRegistrationsAndHandles) {
  MetricsRegistry reg;
  Counter c = reg.counter("c");
  Gauge g = reg.gauge("g");
  Histogram h = reg.histogram("h", {1.0});
  c.add(7);
  g.set(3.0);
  h.observe(0.5);
  reg.reset_values();
  auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].value, 0u);
  EXPECT_EQ(snap.gauges[0].value, 0.0);
  EXPECT_EQ(snap.histograms[0].total, 0u);
  // Old handles keep working after a reset.
  c.add(2);
  h.observe(0.5);
  snap = reg.snapshot();
  EXPECT_EQ(snap.counters[0].value, 2u);
  EXPECT_EQ(snap.histograms[0].total, 1u);
}

TEST(Metrics, ExportJsonHasAllSections) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(1.25);
  reg.histogram("h", {1.0, 2.0}).observe(1.5);
  const std::string json = metrics_to_json(reg);
  EXPECT_NE(json.find("\"counters\":{\"c\":5}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{\"g\":1.25}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"bounds\":[1,2],\"counts\":[0,1,0],\"total\":1}"),
            std::string::npos)
      << json;
}

// Drive a registry from inside parallel_for workers at several pool sizes
// and require the serialized snapshot to be byte-identical. This is the
// acceptance gate for the telemetry subsystem: the per-thread shards may
// split the increments differently at every pool size, but the reduced
// values may not move.
std::string run_sharded_workload(std::size_t threads) {
  ThreadPool::set_global_threads(threads);
  MetricsRegistry reg;
  Counter items = reg.counter("w.items");
  Counter odd = reg.counter("w.odd");
  Histogram h = reg.histogram("w.value", {10.0, 100.0, 1000.0});
  constexpr std::size_t kN = 10'000;
  parallel_for(kN, 64, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      items.add();
      if (i % 2 == 1) odd.add(i % 7);
      h.observe(static_cast<double>(i % 1500));
    }
  });
  return metrics_to_json(reg);
}

TEST(MetricsDeterminism, SnapshotBitIdenticalAcrossThreadCounts) {
  const std::string t1 = run_sharded_workload(1);
  const std::string t2 = run_sharded_workload(2);
  const std::string t8 = run_sharded_workload(8);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  // And the values are the known ground truth, not merely self-consistent.
  EXPECT_NE(t1.find("\"w.items\":10000"), std::string::npos) << t1;
}

}  // namespace
}  // namespace trimgrad::core
