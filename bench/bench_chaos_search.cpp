// Chaos search: property-checked exploration of the fault space.
//
// Samples seeded random FaultScripts at ramping intensity across
// {transport × codec × queue-policy} cells, runs each as an
// invariant-checked closed training loop on a partitioned fat-tree
// (ddp/chaos_search.h), and delta-debugs any violation to a 1-minimal
// deterministic repro written as REPRO_chaos_<cell>_<n>.txt — a FaultScript
// file whose leading comments carry its own replay command line.
//
//   bench_chaos_search                     # search (TRIMGRAD_SMOKE shrinks it)
//   bench_chaos_search --replay "<spec>" [--script <path>] [--k N] [--queue P]
//
// In replay mode the spec's faults=file:<path> (or --script) names the
// script to run; the sorted violation report prints deterministically, so
// two replays at different TRIMGRAD_THREADS diff clean.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "ddp/chaos_search.h"
#include "net/fault_script.h"

using namespace trimgrad;

namespace {

struct Cell {
  const char* transport;
  const char* scheme;
  net::QueuePolicy policy;
  const char* qname;  ///< --queue spelling of the policy
};

constexpr Cell kCells[] = {
    {"trim", "rht", net::QueuePolicy::kTrim, "trim"},
    {"reliable", "rht", net::QueuePolicy::kTrim, "trim"},
    {"pull", "sq", net::QueuePolicy::kTrim, "trim"},
    {"ecn", "sign", net::QueuePolicy::kEcn, "ecn"},
};

ddp::ExperimentSpec cell_spec(const Cell& cell, std::size_t epochs) {
  ddp::ExperimentSpec spec;
  spec.transport = cell.transport;
  spec.scheme = cell.scheme;
  spec.topology = "fabric";
  spec.faults = "none";  // the script is injected directly, not by name
  spec.trim = 0;
  spec.deadline = 10e-3;
  spec.world = 4;
  spec.epochs = epochs;
  spec.batch = 16;
  spec.lr = 0.05;
  return spec;
}

net::QueuePolicy parse_queue(const std::string& name) {
  if (name == "trim") return net::QueuePolicy::kTrim;
  if (name == "ecn") return net::QueuePolicy::kEcn;
  if (name == "droptail") return net::QueuePolicy::kDropTail;
  std::fprintf(stderr, "unknown --queue '%s' (trim|ecn|droptail)\n",
               name.c_str());
  std::exit(2);
}

const char* queue_name(net::QueuePolicy p) {
  switch (p) {
    case net::QueuePolicy::kTrim: return "trim";
    case net::QueuePolicy::kEcn: return "ecn";
    case net::QueuePolicy::kDropTail: return "droptail";
  }
  return "?";
}

void print_violations(const std::vector<net::InvariantViolation>& vs) {
  for (const auto& v : vs) {
    std::printf("violation rule=%s t=%.9g node=%u flow=%u frame=%llu "
                "faults=[%s] %s\n",
                v.rule.c_str(), v.time, v.node, v.flow_id,
                static_cast<unsigned long long>(v.frame_id),
                v.active_faults.c_str(), v.detail.c_str());
  }
}

int replay_main(const std::string& spec_text, std::string script_path,
                std::size_t k, net::QueuePolicy policy) {
  ddp::ExperimentSpec spec = ddp::ExperimentSpec::parse(spec_text);
  if (script_path.empty() && spec.faults_is_file())
    script_path = spec.faults_path();
  if (script_path.empty()) {
    std::fprintf(stderr,
                 "replay needs --script <path> or faults=file:<path>\n");
    return 2;
  }
  const net::FaultScript script = net::FaultScript::load_file(script_path);

  ddp::ChaosCellConfig cfg;
  cfg.fat_tree_k = k;
  cfg.queue_policy = policy;
  const ddp::ChaosCellResult r = ddp::run_chaos_cell(spec, script, cfg);
  std::printf("# replay %s script=%s k=%zu queue=%s\n", spec.label().c_str(),
              script_path.c_str(), k, queue_name(policy));
  std::printf("epochs=%zu drained=%s checks=%llu violations=%llu\n", r.epochs,
              r.drained ? "yes" : "NO",
              static_cast<unsigned long long>(r.checks),
              static_cast<unsigned long long>(r.total_violations));
  print_violations(r.violations);
  return 0;
}

/// The repro artifact is a valid FaultScript file: parse() skips the '#'
/// comment lines that carry the replay recipe.
std::string repro_file_text(const std::string& path, const Cell& cell,
                            const ddp::ChaosRepro& repro, std::size_t k) {
  ddp::ExperimentSpec spec = repro.spec;
  spec.faults = "file:" + path;
  std::string text;
  text += "# minimal chaos repro: " + std::string(cell.transport) + "/" +
          cell.scheme + "/" + cell.qname + ", " +
          std::to_string(repro.script.event_count()) + " event(s)\n";
  text += "# replay: bench_chaos_search --replay \"" + spec.serialize() +
          "\" --k " + std::to_string(k) + " --queue " + cell.qname + "\n";
  for (const auto& v : repro.violations)
    text += "# violates: " + v.rule + " at t=" + std::to_string(v.time) +
            " (" + v.detail + ")\n";
  text += repro.script.serialize();
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  std::string replay_spec, script_path, queue = "trim";
  std::size_t k = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--replay") replay_spec = next();
    else if (a == "--script") script_path = next();
    else if (a == "--k") k = static_cast<std::size_t>(std::stoul(next()));
    else if (a == "--queue") queue = next();
    else {
      std::fprintf(stderr, "unknown argument '%s'\n", a.c_str());
      return 2;
    }
  }
  if (!replay_spec.empty())
    return replay_main(replay_spec, script_path, k != 0 ? k : 4,
                       parse_queue(queue));

  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;
  const std::size_t fat_k = k != 0 ? k : (smoke ? 4 : 8);
  const std::size_t scripts_per_cell = smoke ? 50 : 100;
  const std::size_t epochs = smoke ? 1 : 2;

  std::printf("# chaos search: %zu scripts x %zu cells on a k=%zu fat-tree "
              "(%zu epoch closed loops)\n",
              scripts_per_cell, std::size(kCells), fat_k, epochs);
  std::printf("%20s %8s %10s %10s %8s %8s\n", "cell", "scripts", "violations",
              "checks", "repros", "drain");

  std::string cells_json;
  std::vector<std::string> repro_files;
  std::uint64_t violations_total = 0, checks_total = 0;
  std::size_t unshrunk = 0, scripts_total = 0;
  bool drained_all = true;

  for (std::size_t ci = 0; ci < std::size(kCells); ++ci) {
    const Cell& cell = kCells[ci];
    ddp::ChaosCellConfig ccfg;
    ccfg.fat_tree_k = fat_k;
    ccfg.queue_policy = cell.policy;
    const ddp::ExperimentSpec spec = cell_spec(cell, epochs);

    std::uint64_t cell_violations = 0, cell_checks = 0;
    std::size_t cell_repros = 0;
    bool cell_drained = true;
    for (std::size_t i = 0; i < scripts_per_cell; ++i) {
      // Intensity ramps from gentle to brutal across the cell's scripts.
      const double intensity =
          0.1 + 0.9 * static_cast<double>(i) /
                    static_cast<double>(scripts_per_cell - 1);
      const std::uint64_t seed = 1 + ci * 100000 + i;
      const net::FaultScript script = net::generate_fault_script(
          ddp::chaos_candidates(fat_k, seed, intensity));

      const ddp::ChaosCellResult r = ddp::run_chaos_cell(spec, script, ccfg);
      ++scripts_total;
      cell_checks += r.checks;
      cell_drained = cell_drained && r.drained;
      if (r.total_violations == 0) continue;

      cell_violations += r.total_violations;
      std::printf("! %s/%s script %zu (seed %llu): %llu violation(s), "
                  "shrinking...\n",
                  cell.transport, cell.scheme, i,
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(r.total_violations));
      print_violations(r.violations);
      const ddp::ChaosRepro repro = ddp::shrink_repro(spec, script, ccfg);
      if (repro.violations.empty()) {
        ++unshrunk;  // shrinking lost the bug: report the original script
        std::printf("  shrink FAILED to retain the violation (%zu probes)\n",
                    repro.probes);
        continue;
      }
      char name[128];
      std::snprintf(name, sizeof(name), "REPRO_chaos_%s_%s_%zu.txt",
                    cell.transport, cell.scheme, i);
      std::ofstream out(name, std::ios::binary);
      out << repro_file_text(name, cell, repro, fat_k);
      repro_files.push_back(name);
      ++cell_repros;
      std::printf("  shrunk to %zu event(s) in %zu probes -> %s\n",
                  repro.script.event_count(), repro.probes, name);
    }

    std::printf("%13s/%s/%s %8zu %10llu %10llu %8zu %8s\n", cell.transport,
                cell.scheme, cell.qname, scripts_per_cell,
                static_cast<unsigned long long>(cell_violations),
                static_cast<unsigned long long>(cell_checks), cell_repros,
                cell_drained ? "yes" : "NO");
    std::fflush(stdout);

    violations_total += cell_violations;
    checks_total += cell_checks;
    drained_all = drained_all && cell_drained;
    if (!cells_json.empty()) cells_json += ',';
    char cj[256];
    std::snprintf(cj, sizeof(cj),
                  "{\"transport\":\"%s\",\"scheme\":\"%s\",\"queue\":\"%s\","
                  "\"scripts\":%zu,\"violations\":%llu,\"checks\":%llu,"
                  "\"repros\":%zu,\"drained\":%s}",
                  cell.transport, cell.scheme, cell.qname, scripts_per_cell,
                  static_cast<unsigned long long>(cell_violations),
                  static_cast<unsigned long long>(cell_checks), cell_repros,
                  cell_drained ? "true" : "false");
    cells_json += cj;
  }

  std::string repros_json;
  for (const auto& f : repro_files) {
    if (!repros_json.empty()) repros_json += ',';
    repros_json += "\"" + f + "\"";
  }
  char head[512];
  std::snprintf(head, sizeof(head),
                "{\"smoke\":%s,\"k\":%zu,\"scripts_total\":%zu,"
                "\"violations_total\":%llu,\"unshrunk_violations\":%zu,"
                "\"checks_total\":%llu,\"drained_all\":%s,"
                "\"search_completed\":true,",
                smoke ? "true" : "false", fat_k, scripts_total,
                static_cast<unsigned long long>(violations_total), unshrunk,
                static_cast<unsigned long long>(checks_total),
                drained_all ? "true" : "false");
  {
    std::ofstream out("BENCH_chaos_search.json", std::ios::binary);
    out << head << "\"repros\":[" << repros_json << "],\"cells\":["
        << cells_json << "]}\n";
    if (out) std::printf("wrote BENCH_chaos_search.json\n");
  }
  std::printf("# %zu scripts, %llu violations (%zu unshrunk), drained=%s\n",
              scripts_total,
              static_cast<unsigned long long>(violations_total), unshrunk,
              drained_all ? "all" : "NOT ALL");
  return 0;
}
