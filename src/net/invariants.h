// Runtime invariant monitors: global correctness properties checked while a
// simulation runs, not just asserted after it.
//
// The fault plane (net/fault_plane.h) made chaos runs *replayable*; this
// subsystem makes them *checkable*. An InvariantMonitor attaches to a
// Simulator (and, through thin hooks, to FlowCore/ReceiverCore, Host,
// SwitchNode, ddp::Membership and ddp::DdpTrainer) and continuously verifies
// the properties every recovery path is supposed to preserve:
//
//   frame conservation  — every frame accepted into the fabric leaves it
//                         exactly once (delivered, flushed with a dead link,
//                         or lost at a dead node); custody going negative
//                         means duplication, custody left at sim end means a
//                         frame is stuck in a queue.
//   delivery accounting — every *data* frame handed to a node is resolved by
//                         exactly one outcome during its dispatch: forwarded,
//                         delivered, duplicate re-ACKed, corrupt-NACKed,
//                         trim-rejected, malformed-dropped, unroutable, or
//                         unclaimed. A receiver that silently swallows a
//                         frame (the classic broken-recovery bug) violates
//                         this even though no counter ever disagrees.
//   no stuck flows      — every live flow must make forward progress (begin,
//                         ACK, or terminal) within a simulated-time deadline.
//   on_complete once    — a flow's completion callback fires exactly once,
//                         from exactly one of complete()/fail().
//   queues drained      — at finalize() every egress queue is empty.
//   view monotonicity   — membership view versions never go backwards.
//   frame-id uniqueness — ids are unique across scheduling domains.
//   checkpoint custody  — stored checkpoint blobs re-parse CRC-clean.
//   epoch clock         — the trainer's simulated clock advances every epoch.
//
// Violations are structured reports (rule, sim time, node, flow, frame, the
// fault windows active at that instant) with a canonical sort order, so a
// report is bit-comparable across TRIMGRAD_THREADS — which is what lets the
// chaos-search shrinker (ddp/chaos_search.h) treat "same sorted report" as
// "same bug".
//
// Hooks are nullptr-checked single branches on the hot paths and the monitor
// itself is mutex-guarded, so it is safe under parallel-window execution;
// runs without a monitor attached pay one predictable-not-taken branch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/frame.h"

namespace trimgrad::net {

class Simulator;

/// One detected property violation, with enough context to debug it: what
/// rule broke, when, where, and which fault windows were active.
struct InvariantViolation {
  std::string rule;          ///< e.g. "frame_conservation", "stuck_flow"
  SimTime time = 0;
  NodeId node = kInvalidNode;
  std::uint32_t flow_id = 0;
  std::uint64_t frame_id = 0;
  std::string detail;
  std::string active_faults;  ///< fault windows covering `time`, rendered

  friend bool operator==(const InvariantViolation&,
                         const InvariantViolation&) = default;
};

/// Monitor knobs (namespace-scope so it can be a default argument).
struct InvariantConfig {
  /// Max simulated seconds a live flow may go without forward progress
  /// before it counts as stuck. Generous by default: legitimate RTO
  /// backoff chains in our experiments stay well under a second.
  SimTime flow_progress_deadline = 1.0;
  /// Retention cap for violation reports; further violations are counted
  /// (total_violations()) but not stored.
  std::size_t max_violations = 256;
};

class InvariantMonitor {
 public:
  using Config = InvariantConfig;

  /// How a data frame's delivery to a node was resolved.
  enum class Outcome : std::uint8_t {
    kDelivered = 0,     ///< accepted by a receiver (fresh, intact)
    kForwarded = 1,     ///< a switch re-transmitted it (or dropped trying)
    kDuplicate = 2,     ///< receiver re-ACKed a duplicate
    kCorruptNacked = 3, ///< checksum mismatch, NACKed back
    kTrimRejected = 4,  ///< trimmed arrival NACKed (reliable semantics)
    kMalformed = 5,     ///< out-of-range seq or wrong kind, dropped
    kUnroutable = 6,    ///< switch had no route
    kUnclaimed = 7,     ///< host had no endpoint for the flow
  };

  explicit InvariantMonitor(Config cfg = {});
  ~InvariantMonitor();
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Register with `sim` (sim.set_invariant_monitor(this)) and remember it
  /// for fault-window rendering and finalize(). The monitor detaches itself
  /// on destruction; `sim` must outlive the monitor or detach first.
  void attach(Simulator& sim);

  // --- Simulator hooks ----------------------------------------------------
  void on_frame_id(std::uint64_t id);
  /// A transmit attempt: `accepted` means the frame entered the egress
  /// queue (possibly trimmed). Refused/dropped frames never gain custody.
  /// Also resolves a pending delivery of the same frame id (switch forward).
  void on_transmit(NodeId from, std::uint64_t frame_id, FrameKind kind,
                   bool accepted, SimTime now);
  /// A queued frame was flushed when its link died: custody released.
  void on_queue_flushed(NodeId node, std::uint64_t frame_id, SimTime now);
  /// A frame arrived at a dead node and was lost: custody released.
  void on_arrival_drop(NodeId node, std::uint64_t frame_id, SimTime now);
  /// Bracket a frame dispatch to a node: custody released at begin; at end,
  /// a data frame must have been resolved by exactly one outcome.
  void begin_delivery(NodeId node, const Frame& frame, SimTime now);
  void resolve_delivery(Outcome outcome);
  void end_delivery();

  // --- Flow hooks (FlowCore; keyed by core address while the flow lives) --
  void on_flow_begin(const void* core, std::uint32_t flow_id, SimTime now);
  void on_flow_progress(const void* core, std::uint32_t flow_id, SimTime now);
  void on_flow_complete(const void* core, std::uint32_t flow_id, bool failed,
                        SimTime now);

  // --- Control-plane hooks (ddp::Membership / ddp::DdpTrainer) ------------
  void on_view_version(std::uint64_t version, SimTime now);
  void on_checkpoint_custody(int rank, bool crc_ok, SimTime now);
  void on_epoch_time(std::uint64_t epoch, double sim_time_s);

  /// End-of-run checks against the attached simulator: every egress queue
  /// empty, no frame still in custody, no live flow left behind. Call after
  /// the sim has drained; idempotent per run.
  void finalize();

  // --- Observers ----------------------------------------------------------
  /// Reports in detection order (capped at Config::max_violations).
  std::vector<InvariantViolation> violations() const;
  /// Reports in canonical (time, rule, node, flow, frame, detail) order —
  /// bit-comparable across thread counts.
  std::vector<InvariantViolation> sorted_violations() const;
  /// Violations detected, including any beyond the retention cap.
  std::uint64_t total_violations() const;
  /// Hook invocations served (a liveness sanity check for tests: a monitor
  /// that saw zero checks was not actually wired up).
  std::uint64_t checks() const;
  /// Frames currently in custody (in a queue or on the wire).
  std::size_t frames_in_flight() const;

 private:
  void report(InvariantViolation v);
  std::string render_active_faults(SimTime now) const;

  Config cfg_;
  Simulator* sim_ = nullptr;

  mutable std::mutex mu_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t total_violations_ = 0;
  std::uint64_t checks_ = 0;

  /// frame id -> custody count (+1 queue accept, -1 dispatch/flush/drop).
  std::unordered_map<std::uint64_t, int> custody_;
  std::unordered_set<std::uint64_t> seen_frame_ids_;

  struct FlowRecord {
    std::uint32_t flow_id = 0;
    SimTime last_progress = 0;
    bool stuck_reported = false;
  };
  std::unordered_map<const void*, FlowRecord> live_flows_;

  std::uint64_t last_view_version_ = 0;
  bool view_seen_ = false;
  double last_epoch_time_ = 0;
  bool epoch_seen_ = false;
};

const char* to_string(InvariantMonitor::Outcome o) noexcept;

}  // namespace trimgrad::net
