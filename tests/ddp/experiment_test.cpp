// ExperimentSpec: the one declarative description of a run. These tests pin
// the contract the benches, examples, and CI smoke gates rely on: parse ->
// serialize -> parse is the identity, every value round-trips bit-exactly,
// and unknown names fail fast with the full list of registered alternatives.
#include "ddp/experiment.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

namespace trimgrad::ddp {
namespace {

std::string thrown_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(ExperimentSpec, DefaultsRoundTripThroughSerialize) {
  const ExperimentSpec spec;
  const ExperimentSpec back = ExperimentSpec::parse(spec.serialize());
  EXPECT_EQ(spec, back);
  EXPECT_EQ(spec.serialize(), back.serialize());
}

TEST(ExperimentSpec, EveryKeyRoundTripsBitExactly) {
  ExperimentSpec spec;
  spec.transport = "pull";
  spec.scheme = "sq";
  spec.topology = "fabric";
  spec.faults = "chaos";
  spec.trim = 0.125;
  spec.drop = 1e-3;
  spec.deadline = 2.5e-3;
  spec.world = 8;
  spec.epochs = 3;
  spec.batch = 96;
  spec.lr = 0.007;
  spec.seed = 99;
  spec.fault_seed = 7;
  spec.threads = 2;
  spec.heartbeat_ms = 0.75;
  spec.evict_after = 5;
  spec.ckpt_every = 16;
  spec.policy = "aimd-trim";
  spec.policy_target = 0.125;
  spec.policy_min_q = 5;
  spec.policy_max_q = 23;
  spec.schedule = "0:rht@31;8:sparsify@15";
  spec.capacity = 65536;
  const ExperimentSpec back = ExperimentSpec::parse(spec.serialize());
  EXPECT_EQ(spec, back);
  // Doubles survive a second trip too (shortest-round-trip formatting).
  EXPECT_EQ(back.serialize(), ExperimentSpec::parse(back.serialize()).serialize());
}

TEST(ExperimentSpec, PartialSpecKeepsDefaultsForUnsetKeys) {
  const ExperimentSpec spec = ExperimentSpec::parse("scheme=sd,trim=0.5");
  EXPECT_EQ(spec.scheme, "sd");
  EXPECT_DOUBLE_EQ(spec.trim, 0.5);
  const ExperimentSpec defaults;
  EXPECT_EQ(spec.transport, defaults.transport);
  EXPECT_EQ(spec.world, defaults.world);
  EXPECT_EQ(spec.seed, defaults.seed);
}

TEST(ExperimentSpec, WhitespaceAndCommaSeparatorsBothParse) {
  const ExperimentSpec a = ExperimentSpec::parse("transport=pull,scheme=sq");
  const ExperimentSpec b =
      ExperimentSpec::parse("transport=pull scheme=sq");
  const ExperimentSpec c =
      ExperimentSpec::parse("  transport=pull\n\tscheme=sq  ");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(ExperimentSpec, LabelNamesTransportSchemeAndTrim) {
  ExperimentSpec spec;
  spec.transport = "pull";
  spec.scheme = "rht";
  spec.trim = 0.2;
  EXPECT_EQ(spec.label(), "transport=pull,scheme=rht,trim=0.2");
}

TEST(ExperimentSpec, UnknownTransportListsRegisteredNames) {
  const std::string msg = thrown_message(
      [] { (void)ExperimentSpec::parse("transport=tcp"); });
  EXPECT_NE(msg.find("tcp"), std::string::npos);
  EXPECT_NE(msg.find("ecn"), std::string::npos);
  EXPECT_NE(msg.find("pull"), std::string::npos);
  EXPECT_NE(msg.find("reliable"), std::string::npos);
  EXPECT_NE(msg.find("trim"), std::string::npos);
}

TEST(ExperimentSpec, UnknownSchemeListsRegisteredNames) {
  const std::string msg =
      thrown_message([] { (void)ExperimentSpec::parse("scheme=topk"); });
  EXPECT_NE(msg.find("topk"), std::string::npos);
  EXPECT_NE(msg.find("baseline"), std::string::npos);
  EXPECT_NE(msg.find("rht"), std::string::npos);
  EXPECT_NE(msg.find("eden"), std::string::npos);
  EXPECT_NE(msg.find("multilevel"), std::string::npos);
}

TEST(ExperimentSpec, UnknownKeyListsKnownKeys) {
  const std::string msg =
      thrown_message([] { (void)ExperimentSpec::parse("window=32"); });
  EXPECT_NE(msg.find("window"), std::string::npos);
  EXPECT_NE(msg.find("transport"), std::string::npos);
  EXPECT_NE(msg.find("scheme"), std::string::npos);
  EXPECT_NE(msg.find("trim"), std::string::npos);
}

TEST(ExperimentSpec, MalformedValuesAreRejected) {
  EXPECT_THROW((void)ExperimentSpec::parse("trim=lots"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("world=4.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("scheme"), std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("trim=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("world=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("topology=ring"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("faults=meteor"),
               std::invalid_argument);
}

TEST(ExperimentSpec, TrainerConfigCarriesTheNamedCodec) {
  const ExperimentSpec spec = ExperimentSpec::parse(
      "scheme=sq,world=8,epochs=3,batch=96,lr=0.007,fault_seed=7");
  const auto tcfg = spec.trainer_config();
  EXPECT_EQ(tcfg.codec.scheme, core::Scheme::kSQ);
  EXPECT_EQ(tcfg.world, 8);
  EXPECT_EQ(tcfg.global_batch, 96u);
  EXPECT_EQ(tcfg.epochs, 3u);
  EXPECT_FLOAT_EQ(tcfg.sgd.lr, 0.007f);
}

TEST(ExperimentSpec, NonPacketTrainCodecIsRejectedForTraining) {
  // eden/multilevel are registered codecs but have no trimmable packet
  // train, so a DDP run cannot use them; the spec must say so by name.
  const ExperimentSpec spec = ExperimentSpec::parse("scheme=eden");
  const std::string msg =
      thrown_message([&] { (void)spec.trainer_config(); });
  EXPECT_NE(msg.find("eden"), std::string::npos);
}

TEST(ExperimentSpec, InjectChannelConfigMapsTransportNames) {
  const auto trim = ExperimentSpec::parse("transport=trim,trim=0.3,drop=0.01")
                        .inject_channel_config();
  EXPECT_FALSE(trim.reliable);
  EXPECT_DOUBLE_EQ(trim.injector.trim_rate, 0.3);
  EXPECT_DOUBLE_EQ(trim.injector.drop_rate, 0.01);
  const auto rel = ExperimentSpec::parse("transport=reliable")
                       .inject_channel_config();
  EXPECT_TRUE(rel.reliable);
  // pull/ecn are fabric transports; the injected-loss topology can't host
  // them and must refuse rather than silently fall back.
  const std::string msg = thrown_message([] {
    (void)ExperimentSpec::parse("transport=pull").inject_channel_config();
  });
  EXPECT_NE(msg.find("pull"), std::string::npos);
}

TEST(ExperimentSpec, SimChannelConfigSelectsTransportByName) {
  const ExperimentSpec spec =
      ExperimentSpec::parse("transport=ecn,topology=fabric,deadline=0.01");
  const auto ccfg = spec.sim_channel_config();
  EXPECT_EQ(ccfg.transport, "ecn");
  EXPECT_DOUBLE_EQ(ccfg.round_deadline, 0.01);
}

TEST(ExperimentSpec, MembershipKeysRoundTripAndProject) {
  const ExperimentSpec spec = ExperimentSpec::parse(
      "faults=elastic,heartbeat_ms=0.5,evict_after=2,ckpt_every=4");
  EXPECT_DOUBLE_EQ(spec.heartbeat_ms, 0.5);
  EXPECT_EQ(spec.evict_after, 2u);
  EXPECT_EQ(spec.ckpt_every, 4u);
  EXPECT_EQ(spec, ExperimentSpec::parse(spec.serialize()));

  const MembershipConfig mcfg = spec.membership_config();
  EXPECT_DOUBLE_EQ(mcfg.heartbeat_s, 0.5e-3);
  EXPECT_EQ(mcfg.evict_after, 2u);
  EXPECT_EQ(mcfg.ckpt_every, 4u);
}

TEST(ExperimentSpec, MembershipKeysAreRangeChecked) {
  // Out-of-range values name the valid range in the error.
  const std::string hb = thrown_message(
      [] { (void)ExperimentSpec::parse("heartbeat_ms=-1"); });
  EXPECT_NE(hb.find("[0, 10000]"), std::string::npos) << hb;
  EXPECT_THROW((void)ExperimentSpec::parse("heartbeat_ms=10001"),
               std::invalid_argument);

  const std::string ev = thrown_message(
      [] { (void)ExperimentSpec::parse("evict_after=0"); });
  EXPECT_NE(ev.find("[1, 1024]"), std::string::npos) << ev;
  EXPECT_THROW((void)ExperimentSpec::parse("evict_after=2000"),
               std::invalid_argument);

  const std::string ck = thrown_message(
      [] { (void)ExperimentSpec::parse("ckpt_every=1048577"); });
  EXPECT_NE(ck.find("[0, 1048576]"), std::string::npos) << ck;

  // The elastic fault script is meaningless without a detector.
  EXPECT_THROW((void)ExperimentSpec::parse("faults=elastic"),
               std::invalid_argument);
}

TEST(ExperimentSpec, PolicyKeysRoundTripAndProject) {
  const ExperimentSpec spec = ExperimentSpec::parse(
      "policy=aimd-trim,policy_target=0.1,policy_min_q=5,policy_max_q=23,"
      "capacity=4096");
  EXPECT_EQ(spec.policy, "aimd-trim");
  EXPECT_DOUBLE_EQ(spec.policy_target, 0.1);
  EXPECT_EQ(spec.policy_min_q, 5u);
  EXPECT_EQ(spec.policy_max_q, 23u);
  EXPECT_EQ(spec.capacity, 4096u);
  EXPECT_EQ(spec, ExperimentSpec::parse(spec.serialize()));

  const core::PolicyConfig pc = spec.policy_config();
  EXPECT_EQ(pc.policy, "aimd-trim");
  EXPECT_EQ(pc.codec, spec.scheme);
  EXPECT_DOUBLE_EQ(pc.aimd.target_trim, 0.1);
  EXPECT_EQ(pc.aimd.min_q, 5u);
  EXPECT_EQ(pc.aimd.max_q, 23u);
  EXPECT_EQ(pc.aimd.initial_q, 23u);

  // trainer_config() embeds the policy so benches get it for free.
  EXPECT_EQ(spec.trainer_config().policy.policy, "aimd-trim");
  // capacity reaches the inject channel as its per-batch byte budget.
  EXPECT_EQ(spec.inject_channel_config().capacity_bytes, 4096u);
}

TEST(ExperimentSpec, PolicyLabelMarksNonFixedCells) {
  ExperimentSpec spec;
  EXPECT_EQ(spec.label().find("policy="), std::string::npos);
  spec.policy = "aimd-trim";
  EXPECT_NE(spec.label().find("policy=aimd-trim"), std::string::npos);
}

TEST(ExperimentSpec, UnknownPolicyListsRegisteredNames) {
  const std::string msg = thrown_message(
      [] { (void)ExperimentSpec::parse("policy=oracle"); });
  EXPECT_NE(msg.find("oracle"), std::string::npos) << msg;
  EXPECT_NE(msg.find("aimd-trim"), std::string::npos) << msg;
  EXPECT_NE(msg.find("fixed"), std::string::npos) << msg;
  EXPECT_NE(msg.find("schedule"), std::string::npos) << msg;
}

TEST(ExperimentSpec, PolicyKeysAreRangeChecked) {
  const std::string q = thrown_message(
      [] { (void)ExperimentSpec::parse("policy_min_q=0"); });
  EXPECT_NE(q.find("policy_min_q"), std::string::npos) << q;
  EXPECT_THROW((void)ExperimentSpec::parse("policy_max_q=32"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)ExperimentSpec::parse("policy_min_q=20,policy_max_q=10"),
      std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("policy_target=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("policy_target=1"),
               std::invalid_argument);
  // A schedule naming an unregistered codec fails at validate() time.
  EXPECT_THROW(
      (void)ExperimentSpec::parse("policy=schedule,schedule=0:warp@31"),
      std::invalid_argument);
}

}  // namespace
}  // namespace trimgrad::ddp
