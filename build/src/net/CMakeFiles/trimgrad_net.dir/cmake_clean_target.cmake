file(REMOVE_RECURSE
  "libtrimgrad_net.a"
)
