# Empty dependencies file for test_net_queue.
# This may be replaced when dependencies are built.
