// Experiment F3 (DESIGN.md): Figure 3 — top-1 accuracy vs (simulated) wall
// clock for every encoding scheme at every trim rate.
//
// The paper's claims to reproduce in *shape*:
//  * sign-magnitude diverges (or stalls near chance) at trim rates >= 2 %;
//  * SQ/SD track the baseline up to 10-20 %;
//  * RHT is slower per round (encode overhead) but reaches the highest
//    accuracy at 25-50 % trim — the only scheme usable at 50 %.
//
// Output: one long-format table, one row per (scheme, rate, epoch):
//   scheme rate% epoch sim_time_s top1 top5 loss
// Plot sim_time_s vs top1 grouped by scheme to recover the figure panels.
#include <cstdio>

#include "ddp_sweep.h"

int main() {
  using namespace trimgrad;
  const bench::SweepConfig cfg = bench::scaled_sweep();

  std::printf("# Figure 3 reproduction: accuracy vs simulated time\n");
  std::printf("# world=%d batch=%zu epochs=%zu dataset=%zux%zu classes=%zu\n",
              cfg.world, cfg.global_batch, cfg.epochs, cfg.image, cfg.image,
              cfg.classes);
  std::printf("%-9s %7s %6s %12s %7s %7s %9s\n", "scheme", "rate%", "epoch",
              "sim_time_s", "top1", "top5", "loss");

  for (double rate : bench::paper_trim_rates()) {
    for (core::Scheme scheme : bench::all_schemes()) {
      const auto spec = bench::sweep_spec(cfg, scheme, rate);
      const auto cell = bench::run_cell(cfg, spec);
      for (const auto& r : cell.records) {
        if (r.top1 < 0) continue;
        std::printf("%-9s %6.1f%% %6zu %12.4f %7.3f %7.3f %9.4f\n",
                    core::to_string(scheme), rate * 100, r.epoch,
                    r.sim_time_s, r.top1, r.top5, r.train_loss);
      }
      std::fflush(stdout);
    }
  }
  return 0;
}
