#!/usr/bin/env python3
"""Validate bench_parallel_scaling output and gate on throughput regressions.

Usage:
    check_bench.py CANDIDATE [--baseline BENCH_parallel.json] [--max-slowdown 2.0]

CANDIDATE is the BENCH_parallel.json produced by the run under test (smoke or
full size).  The committed baseline holds full-size numbers; comparisons use
per-section throughput (items processed per second), which is roughly
size-invariant, so a smoke run can be compared against a full-size baseline.

Exit codes: 0 ok, 1 malformed candidate, 2 regression beyond the threshold.
Only the Python standard library is used.
"""

import argparse
import json
import sys


def fail(code, msg):
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)
    sys.exit(code)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(1, f"cannot parse {path}: {exc}")


def validate(doc, path):
    """Structural checks on a bench_parallel_scaling JSON document."""
    if not isinstance(doc, dict):
        fail(1, f"{path}: top level is not an object")
    for key in ("thread_counts", "sections", "deterministic"):
        if key not in doc:
            fail(1, f"{path}: missing key {key!r}")
    if doc["deterministic"] is not True:
        fail(1, f"{path}: deterministic is not true -- parallel results "
                "diverged from single-threaded reference")
    n_threads = len(doc["thread_counts"])
    if n_threads == 0:
        fail(1, f"{path}: empty thread_counts")
    sections = doc["sections"]
    if not isinstance(sections, dict) or not sections:
        fail(1, f"{path}: sections must be a non-empty object")
    for name, sec in sections.items():
        for key in ("seconds", "items", "throughput"):
            if key not in sec:
                fail(1, f"{path}: section {name!r} missing {key!r}")
        secs = sec["seconds"]
        if len(secs) != n_threads:
            fail(1, f"{path}: section {name!r} has {len(secs)} timings for "
                    f"{n_threads} thread counts")
        if any(not isinstance(s, (int, float)) or s <= 0 for s in secs):
            fail(1, f"{path}: section {name!r} has non-positive timings")
        if not isinstance(sec["items"], int) or sec["items"] <= 0:
            fail(1, f"{path}: section {name!r} has invalid items count")
        if sec["throughput"] <= 0:
            fail(1, f"{path}: section {name!r} has non-positive throughput")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("candidate")
    ap.add_argument("--baseline", default=None,
                    help="committed full-size BENCH_parallel.json; skip the "
                         "regression gate when omitted")
    ap.add_argument("--max-slowdown", type=float, default=2.0,
                    help="fail if candidate throughput is more than this "
                         "factor below baseline (default 2.0)")
    args = ap.parse_args()

    cand = load_json(args.candidate)
    validate(cand, args.candidate)
    print(f"check_bench: {args.candidate} is well-formed "
          f"({len(cand['sections'])} sections, smoke={cand.get('smoke')})")

    if args.baseline is None:
        return

    base = load_json(args.baseline)
    validate(base, args.baseline)

    worst = None
    for name, bsec in base["sections"].items():
        csec = cand["sections"].get(name)
        if csec is None:
            fail(1, f"{args.candidate}: section {name!r} present in baseline "
                    "but missing from candidate")
        ratio = bsec["throughput"] / csec["throughput"]
        print(f"check_bench: {name}: baseline {bsec['throughput']:.3g} items/s, "
              f"candidate {csec['throughput']:.3g} items/s "
              f"(slowdown {ratio:.2f}x)")
        if worst is None or ratio > worst[1]:
            worst = (name, ratio)
        if ratio > args.max_slowdown:
            fail(2, f"section {name!r} regressed {ratio:.2f}x vs baseline "
                    f"(threshold {args.max_slowdown}x)")
    print(f"check_bench: OK -- worst slowdown {worst[1]:.2f}x ({worst[0]})")


if __name__ == "__main__":
    main()
