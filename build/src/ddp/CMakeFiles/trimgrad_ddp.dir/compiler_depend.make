# Empty compiler generated dependencies file for trimgrad_ddp.
# This may be replaced when dependencies are built.
