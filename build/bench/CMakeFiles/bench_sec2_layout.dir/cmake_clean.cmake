file(REMOVE_RECURSE
  "CMakeFiles/bench_sec2_layout.dir/bench_sec2_layout.cpp.o"
  "CMakeFiles/bench_sec2_layout.dir/bench_sec2_layout.cpp.o.d"
  "bench_sec2_layout"
  "bench_sec2_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec2_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
