#include "core/codec.h"

#include <algorithm>
#include <cassert>

#include "core/bitpack.h"
#include "core/hadamard.h"
#include "core/lowrank.h"
#include "core/magnitude.h"
#include "core/metrics.h"
#include "core/quantizer.h"
#include "core/rht_codec.h"
#include "core/sparsify.h"
#include "core/stats.h"
#include "core/threadpool.h"
#include "core/trace.h"

namespace trimgrad::core {

namespace {

// encode()/decode() entry points are sequential (the parallelism lives in
// the per-row loops below them), so message-level spans are safe to record;
// per-coordinate tallies are integer counters and may also come from the
// row workers.
struct CodecTelemetry {
  Counter enc_messages, enc_coords, enc_wire_bytes, enc_packets;
  Counter dec_messages, dec_full, dec_trimmed, dec_lost;
  Histogram loss_fraction;

  static const CodecTelemetry& get() {
    auto& reg = MetricsRegistry::global();
    static const CodecTelemetry t{
        reg.counter("codec.encode.messages"),
        reg.counter("codec.encode.coords"),
        reg.counter("codec.encode.wire_bytes"),
        reg.counter("codec.encode.packets"),
        reg.counter("codec.decode.messages"),
        reg.counter("codec.decode.full_coords"),
        reg.counter("codec.decode.trimmed_coords"),
        reg.counter("codec.decode.lost_coords"),
        reg.histogram("codec.decode.loss_fraction",
                      {0.0, 0.001, 0.01, 0.05, 0.1, 0.25, 0.5}),
    };
    return t;
  }
};

ScalarScheme to_scalar(Scheme s) noexcept {
  switch (s) {
    case Scheme::kSign: return ScalarScheme::kSign;
    case Scheme::kSQ: return ScalarScheme::kSQ;
    case Scheme::kSD: return ScalarScheme::kSD;
    // The composed schemes ride SD heads/tails over a transformed buffer
    // (sparsified / magnitude-placed); SD's shared-dither reconstruction
    // needs no extra sender state.
    case Scheme::kTopK: return ScalarScheme::kSD;
    case Scheme::kMagnitude: return ScalarScheme::kSD;
    default: break;
  }
  assert(false && "not a scalar scheme");
  return ScalarScheme::kSign;
}

/// Truncate a 31-bit tail container to `q` stored bits (keep the top bits —
/// sign/exponent side). Ahead-of-time compression (§5.3): a sender that
/// expects congestion lowers Q and sends shorter tails.
std::uint32_t tail_store(std::uint32_t tail31, unsigned q) noexcept {
  return q >= 31 ? tail31 : tail31 >> (31 - q);
}

/// Expand a stored q-bit tail back to the 31-bit container, filling the
/// dropped low bits with their bucket midpoint.
std::uint32_t tail_expand(std::uint32_t stored, unsigned q) noexcept {
  if (q >= 31) return stored;
  return (stored << (31 - q)) | (1u << (30 - q));
}

/// Pack `n` head bits / q-bit tails starting at `base` into a packet.
GradientPacket make_packet(const CodecConfig& cfg, std::uint32_t msg_id,
                           std::uint32_t row_id, std::uint32_t coord_base,
                           std::uint16_t seq,
                           std::span<const std::uint8_t> heads,
                           std::span<const std::uint32_t> tails) {
  GradientPacket pkt;
  pkt.msg_id = msg_id;
  pkt.row_id = row_id;
  pkt.coord_base = coord_base;
  pkt.n_coords = static_cast<std::uint16_t>(heads.size());
  pkt.seq = seq;
  pkt.scheme = cfg.scheme;
  pkt.p_bits = static_cast<std::uint8_t>(cfg.effective_layout().p_bits);
  pkt.q_bits = static_cast<std::uint8_t>(cfg.effective_layout().q_bits);

  BitWriter head_w;
  head_w.put_bits8(heads.data(), heads.size());
  pkt.head_region = std::move(head_w).finish();

  BitWriter tail_w;
  const unsigned q = cfg.effective_layout().q_bits;
  if (q >= 31) {
    // Default layout: 31-bit tails are stored verbatim.
    tail_w.put_run(tails.data(), tails.size(), 31);
  } else {
    std::vector<std::uint32_t> stored(tails.size());
    for (std::size_t i = 0; i < tails.size(); ++i)
      stored[i] = tail_store(tails[i], q);
    tail_w.put_run(stored.data(), stored.size(), q);
  }
  pkt.tail_region = std::move(tail_w).finish();
  return pkt;
}

/// Pack raw float coordinates (baseline, Fig. 2a): all payload is "tail".
GradientPacket make_baseline_packet(std::uint32_t msg_id,
                                    std::uint32_t coord_base,
                                    std::uint16_t seq,
                                    std::span<const float> coords) {
  GradientPacket pkt;
  pkt.msg_id = msg_id;
  pkt.coord_base = coord_base;
  pkt.n_coords = static_cast<std::uint16_t>(coords.size());
  pkt.seq = seq;
  pkt.scheme = Scheme::kBaseline;
  pkt.p_bits = 0;
  pkt.q_bits = 32;
  BitWriter w;
  for (float v : coords) w.put(float_bits(v), 32);
  pkt.tail_region = std::move(w).finish();
  return pkt;
}

}  // namespace

PacketLayout CodecConfig::effective_layout() const noexcept {
  PacketLayout l = layout;
  if (scheme == Scheme::kBaseline) {
    l.p_bits = 0;
    l.q_bits = 32;
  }
  return l;
}

std::size_t MessageMeta::wire_bytes() const noexcept {
  // header + msg_id(4) + epoch(8) + scheme(1) + total(4) + row_len(4) +
  // scalar scale(4) + row scales.
  std::size_t bytes = kTransportHeaderBytes + 25 + 4 * row_scales.size();
  if (!perm.empty()) bytes += permutation_overhead_bytes(perm.size());
  if (lr_rank > 0) bytes += 12 + 4 * lr_q.size();
  return bytes;
}

std::size_t EncodedMessage::total_wire_bytes() const noexcept {
  std::size_t total = meta.wire_bytes();
  for (const auto& p : packets) total += p.wire_bytes();
  return total;
}

TrimmableEncoder::TrimmableEncoder(CodecConfig cfg)
    : cfg_(std::move(cfg)), private_rng_(cfg_.private_seed) {
  assert(is_pow2(cfg_.rht_row_len));
}

EncodedMessage TrimmableEncoder::encode(std::span<const float> grad,
                                        std::uint32_t msg_id,
                                        std::uint64_t epoch) {
  TraceLog::Span trace_span = TraceLog::global().span("codec.encode", "codec");
  trace_span.arg("coords", static_cast<double>(grad.size()));
  EncodedMessage out;
  out.meta.msg_id = msg_id;
  out.meta.epoch = epoch;
  out.meta.scheme = cfg_.scheme;
  out.meta.total_coords = static_cast<std::uint32_t>(grad.size());

  const PacketLayout layout = cfg_.effective_layout();
  const std::size_t per_pkt = layout.coords_per_packet();
  assert(per_pkt > 0);
  std::uint16_t seq = 0;

  // Shared §3.1 head/tail path: scalar-encode `values` (the gradient, or a
  // sparsified/permuted stand-in) and cut it into packets.
  const auto encode_scalar = [&](ScalarScheme ss,
                                 std::span<const float> values) {
    const float scale = scalar_scale(ss, values);
    out.meta.scalar_scale = scale;
    std::vector<float> dithers;
    if (ss == ScalarScheme::kSD) {
      dithers = make_dithers(
          values.size(), scale,
          SharedRng(StreamKey{cfg_.shared_seed, epoch, msg_id, 0}));
    }
    std::vector<std::uint8_t> heads;
    std::vector<std::uint32_t> tails;
    scalar_encode_all(ss, values, scale, private_rng_, dithers, heads, tails);
    for (std::size_t base = 0; base < values.size(); base += per_pkt) {
      const std::size_t n = std::min(per_pkt, values.size() - base);
      out.packets.push_back(make_packet(
          cfg_, msg_id, /*row_id=*/0, static_cast<std::uint32_t>(base),
          seq++, std::span(heads).subspan(base, n),
          std::span(tails).subspan(base, n)));
    }
  };

  switch (cfg_.scheme) {
    case Scheme::kBaseline: {
      for (std::size_t base = 0; base < grad.size(); base += per_pkt) {
        const std::size_t n = std::min(per_pkt, grad.size() - base);
        out.packets.push_back(make_baseline_packet(
            msg_id, static_cast<std::uint32_t>(base), seq++,
            grad.subspan(base, n)));
      }
      break;
    }
    case Scheme::kSign:
    case Scheme::kSQ:
    case Scheme::kSD: {
      encode_scalar(to_scalar(cfg_.scheme), grad);
      break;
    }
    case Scheme::kTopK: {
      // Ahead-of-time sparsify (§5.3): drop the smallest-magnitude share
      // before encoding, then ship the survivors trimmably so switches can
      // still compress further under unpredicted congestion.
      std::vector<float> kept(grad.begin(), grad.end());
      topk_sparsify_inplace(kept, cfg_.topk_keep);
      encode_scalar(ScalarScheme::kSD, kept);
      break;
    }
    case Scheme::kMagnitude: {
      // §2 strawman: magnitude-ordered placement. The permutation rides the
      // reliable metadata (cost made explicit in MessageMeta::wire_bytes).
      out.meta.perm = magnitude_order(grad);
      const std::vector<float> placed = apply_permutation(grad, out.meta.perm);
      encode_scalar(ScalarScheme::kSD, placed);
      break;
    }
    case Scheme::kLowRank: {
      if (grad.empty()) break;
      const std::size_t n = grad.size();
      const std::size_t cols =
          std::min(std::max<std::size_t>(cfg_.lowrank_cols, 1), n);
      const std::size_t rows = (n + cols - 1) / cols;
      std::vector<float> m(rows * cols, 0.0f);
      std::copy(grad.begin(), grad.end(), m.begin());
      const std::size_t rank = std::clamp<std::size_t>(
          cfg_.lowrank_rank, 1, std::min(rows, cols));
      const LowRankFactors f =
          power_factorize(m, rows, cols, rank, cfg_.lowrank_iters,
                          mix64(cfg_.shared_seed, mix64(epoch, msg_id)));
      // Importance-ordered component split: the first lr_head components go
      // into the untrimmable head region, the rest into the tail — a switch
      // trim always cuts the smallest-singular-value ranks (§5.2).
      const std::size_t head_k = std::max<std::size_t>(1, rank / 4);
      out.meta.lr_rows = static_cast<std::uint32_t>(rows);
      out.meta.lr_cols = static_cast<std::uint32_t>(cols);
      out.meta.lr_rank = static_cast<std::uint16_t>(rank);
      out.meta.lr_head = static_cast<std::uint16_t>(head_k);
      out.meta.lr_q = f.q;
      const std::size_t rows_per = std::max<std::size_t>(
          1, layout.payload_bytes() / (rank * sizeof(float)));
      for (std::size_t r0 = 0; r0 < rows; r0 += rows_per) {
        const std::size_t nr = std::min(rows_per, rows - r0);
        GradientPacket pkt;
        pkt.msg_id = msg_id;
        pkt.coord_base = static_cast<std::uint32_t>(r0);
        pkt.n_coords = static_cast<std::uint16_t>(nr);
        pkt.seq = seq++;
        pkt.scheme = Scheme::kLowRank;
        pkt.p_bits = static_cast<std::uint8_t>(head_k);
        pkt.q_bits = static_cast<std::uint8_t>(rank);
        BitWriter head_w, tail_w;
        for (std::size_t k = 0; k < rank; ++k) {
          BitWriter& w = k < head_k ? head_w : tail_w;
          for (std::size_t i = 0; i < nr; ++i)
            w.put(float_bits(f.p[k * rows + r0 + i]), 32);
        }
        pkt.head_region = std::move(head_w).finish();
        pkt.tail_region = std::move(tail_w).finish();
        out.packets.push_back(std::move(pkt));
      }
      break;
    }
    case Scheme::kRHT: {
      const RowSplit split = make_row_split(grad.size(), cfg_.rht_row_len);
      out.meta.row_len = static_cast<std::uint32_t>(cfg_.rht_row_len);
      out.meta.row_scales.assign(split.n_rows, 0.0f);
      // Rows are bit-exactly independent (per-row StreamKey), so encode
      // them across the pool. Packet counts are known up front, so each row
      // writes into its own pre-sized slice of out.packets and seq numbers
      // stay identical to the sequential order.
      std::vector<std::size_t> pkt_base(split.n_rows + 1, 0);
      for (std::size_t r = 0; r < split.n_rows; ++r) {
        pkt_base[r + 1] =
            pkt_base[r] + (split.padded_len(r) + per_pkt - 1) / per_pkt;
      }
      out.packets.resize(pkt_base[split.n_rows]);
      parallel_for(split.n_rows, 1, [&](std::size_t r0, std::size_t r1) {
        // Per-chunk scratch: row copy and head/tail arrays are reused across
        // the rows of this chunk instead of reallocated per row.
        std::vector<float> row;
        RhtEncodedRow enc;
        for (std::size_t r = r0; r < r1; ++r) {
          extract_padded_row_into(grad, split, r, row);
          const StreamKey key{cfg_.shared_seed, epoch, msg_id, r};
          rht_encode_row_inplace(row, key, enc);
          out.meta.row_scales[r] = enc.scale_f;
          // Packets never span rows: coord_base is global, row-local offset
          // recovered as coord_base − row·row_len at decode.
          const std::size_t row_base = split.offset(r);
          std::size_t slot = pkt_base[r];
          for (std::size_t off = 0; off < enc.heads.size(); off += per_pkt) {
            const std::size_t n = std::min(per_pkt, enc.heads.size() - off);
            out.packets[slot] = make_packet(
                cfg_, msg_id, static_cast<std::uint32_t>(r),
                static_cast<std::uint32_t>(row_base + off),
                static_cast<std::uint16_t>(slot),
                std::span(enc.heads).subspan(off, n),
                std::span(enc.tails).subspan(off, n));
            ++slot;
          }
        }
      });
      break;
    }
  }
  const CodecTelemetry& t = CodecTelemetry::get();
  t.enc_messages.add();
  t.enc_coords.add(grad.size());
  t.enc_wire_bytes.add(out.total_wire_bytes());
  t.enc_packets.add(out.packets.size());
  return out;
}

DecodeResult TrimmableDecoder::decode(std::span<const GradientPacket> packets,
                                      const MessageMeta& meta) const {
  TraceLog::Span trace_span = TraceLog::global().span("codec.decode", "codec");
  trace_span.arg("coords", static_cast<double>(meta.total_coords));
  DecodeResult out;
  out.values.assign(meta.total_coords, 0.0f);
  out.stats.total_coords = meta.total_coords;

  switch (meta.scheme) {
    case Scheme::kBaseline: {
      std::size_t covered = 0;
      for (const auto& pkt : packets) {
        if (pkt.trimmed) continue;  // baseline trim loses the payload
        BitReader r(pkt.tail_region);
        for (std::size_t j = 0; j < pkt.n_coords; ++j) {
          const std::size_t idx = pkt.coord_base + j;
          if (idx >= out.values.size()) break;
          out.values[idx] =
              bits_float(static_cast<std::uint32_t>(r.get(32)));
          ++covered;
        }
      }
      out.stats.full_coords = covered;
      out.stats.lost_coords = meta.total_coords - covered;
      break;
    }
    case Scheme::kSign:
    case Scheme::kSQ:
    case Scheme::kSD:
    case Scheme::kTopK:
    case Scheme::kMagnitude: {
      const ScalarScheme ss = to_scalar(meta.scheme);
      std::vector<float> dithers;
      if (ss == ScalarScheme::kSD) {
        dithers = make_dithers(
            meta.total_coords, meta.scalar_scale,
            SharedRng(StreamKey{cfg_.shared_seed, meta.epoch, meta.msg_id, 0}));
      }
      std::vector<std::uint8_t> seen(meta.total_coords, 0);
      for (const auto& pkt : packets) {
        BitReader heads(pkt.head_region);
        BitReader tails(pkt.tail_region);
        for (std::size_t j = 0; j < pkt.n_coords; ++j) {
          const bool h = heads.get_bit();
          const std::size_t idx = pkt.coord_base + j;
          if (idx >= out.values.size()) continue;
          const float dither =
              ss == ScalarScheme::kSD ? dithers[idx] : 0.0f;
          if (pkt.trimmed) {
            out.values[idx] =
                scalar_decode_trimmed(ss, h, meta.scalar_scale, dither);
            seen[idx] = 1;
            ++out.stats.trimmed_coords;
          } else {
            out.values[idx] = scalar_decode_full(
                ss, h,
                tail_expand(static_cast<std::uint32_t>(tails.get(pkt.q_bits)),
                            pkt.q_bits));
            seen[idx] = 1;
            ++out.stats.full_coords;
          }
        }
      }
      for (std::uint8_t s : seen)
        if (s == 0) ++out.stats.lost_coords;
      if (meta.scheme == Scheme::kMagnitude &&
          meta.perm.size() == out.values.size()) {
        // The packets carried placement order; restore coordinate order.
        std::vector<float> orig(out.values.size(), 0.0f);
        for (std::size_t i = 0; i < out.values.size(); ++i)
          orig[meta.perm[i]] = out.values[i];
        out.values = std::move(orig);
      }
      break;
    }
    case Scheme::kLowRank: {
      const std::size_t rows = meta.lr_rows;
      const std::size_t cols = meta.lr_cols;
      const std::size_t rank = meta.lr_rank;
      if (rows == 0 || cols == 0 || rank == 0 ||
          meta.lr_q.size() != cols * rank) {
        out.stats.lost_coords = meta.total_coords;
        break;
      }
      // Assemble the P factor from surviving slices. Components a trim cut
      // away stay zero — reconstruction then uses exactly the surviving
      // (most important) ranks of each row slice.
      std::vector<float> p(rows * rank, 0.0f);
      std::vector<std::uint8_t> row_state(rows, 2);  // 0 full, 1 trim, 2 lost
      for (const auto& pkt : packets) {
        const std::size_t head_k = pkt.p_bits;
        const std::size_t r0 = pkt.coord_base;
        const std::size_t nr = pkt.n_coords;
        if (pkt.q_bits != rank || head_k > rank || r0 + nr > rows) continue;
        BitReader hr(pkt.head_region);
        for (std::size_t k = 0; k < head_k; ++k)
          for (std::size_t i = 0; i < nr; ++i)
            p[k * rows + r0 + i] =
                bits_float(static_cast<std::uint32_t>(hr.get(32)));
        if (!pkt.trimmed) {
          BitReader tr(pkt.tail_region);
          for (std::size_t k = head_k; k < rank; ++k)
            for (std::size_t i = 0; i < nr; ++i)
              p[k * rows + r0 + i] =
                  bits_float(static_cast<std::uint32_t>(tr.get(32)));
        }
        for (std::size_t i = r0; i < r0 + nr; ++i) {
          if (!pkt.trimmed) {
            row_state[i] = 0;
          } else if (row_state[i] == 2) {
            row_state[i] = 1;
          }
        }
      }
      // M̂ = P·Qᵀ row by row, only the real (unpadded) coordinates.
      for (std::size_t i = 0; i < rows; ++i) {
        const std::size_t base = i * cols;
        if (base >= out.values.size()) break;
        const std::size_t real = std::min(cols, out.values.size() - base);
        for (std::size_t k = 0; k < rank; ++k) {
          const float pv = p[k * rows + i];
          if (pv == 0.0f) continue;
          const float* qc = meta.lr_q.data() + k * cols;
          for (std::size_t j = 0; j < real; ++j)
            out.values[base + j] += pv * qc[j];
        }
        if (row_state[i] == 0) {
          out.stats.full_coords += real;
        } else if (row_state[i] == 1) {
          out.stats.trimmed_coords += real;
        } else {
          out.stats.lost_coords += real;
        }
      }
      break;
    }
    case Scheme::kRHT: {
      const RowSplit split = make_row_split(meta.total_coords, meta.row_len);
      // Bucket packets by row once (also turns the old rows×packets scan
      // into a single pass), then decode rows across the pool: each row
      // writes a disjoint slice of out.values and its own stats slot, so
      // results and stats are identical for any thread count.
      std::vector<std::vector<const GradientPacket*>> by_row(split.n_rows);
      for (const auto& pkt : packets) {
        if (pkt.row_id < split.n_rows) by_row[pkt.row_id].push_back(&pkt);
      }
      std::vector<DecodeStats> row_stats(split.n_rows);
      parallel_for(split.n_rows, 1, [&](std::size_t r0, std::size_t r1) {
        // Per-chunk scratch reused across this chunk's rows.
        std::vector<std::uint8_t> heads, state, trimmed_mask;
        std::vector<std::uint32_t> tails;
        std::vector<float> row;
        for (std::size_t r = r0; r < r1; ++r) {
          const std::size_t padded = split.padded_len(r);
          const std::size_t row_base = split.offset(r);
          heads.assign(padded, 0);
          tails.assign(padded, 0);
          // 0 = full, 1 = trimmed (head survives), 2 = lost (nothing).
          state.assign(padded, 2);
          for (const GradientPacket* pkt : by_row[r]) {
            // Bulk unpack. The reference per-coordinate loop reads a head
            // bit for every j but skips writes (and never consumes tail
            // bits) where local = coord_base − row_base + j lands outside
            // [0, padded); with size_t wrap-around a coord_base below
            // row_base means a leading skip of j0 = −start coordinates.
            const std::size_t start = pkt->coord_base - row_base;
            std::size_t j0 = 0;
            std::size_t local0 = start;
            if (start >= padded) {
              j0 = std::size_t{0} - start;  // first j that wraps to local 0
              if (j0 >= pkt->n_coords) continue;  // fully out of range
              local0 = 0;
            }
            const std::size_t n_ok =
                std::min<std::size_t>(pkt->n_coords - j0, padded - local0);
            BitReader hr(pkt->head_region);
            hr.skip(j0);
            hr.get_bits8(heads.data() + local0, n_ok);
            if (pkt->trimmed) {
              std::fill_n(state.begin() + local0, n_ok, std::uint8_t{1});
            } else {
              BitReader tr(pkt->tail_region);
              tr.get_run(tails.data() + local0, n_ok, pkt->q_bits);
              if (pkt->q_bits < 31) {
                for (std::size_t k = 0; k < n_ok; ++k)
                  tails[local0 + k] =
                      tail_expand(tails[local0 + k], pkt->q_bits);
              }
              std::fill_n(state.begin() + local0, n_ok, std::uint8_t{0});
            }
          }
          // Lost coordinates decode as r̂ = 0 (no sign information at all);
          // substitute r̂ directly: head=1 (+0.0), tail=0, not trimmed.
          // Single branchless pass: the compares are cheap and predictable
          // where the branchy version mispredicted on mixed-state rows.
          trimmed_mask.resize(padded);
          for (std::size_t i = 0; i < padded; ++i) {
            const std::uint8_t lost = state[i] == 2;
            trimmed_mask[i] = state[i] == 1;
            heads[i] |= lost;
            tails[i] &= std::uint32_t{lost} - 1u;  // lost: &0, else: &~0
          }
          const StreamKey key{cfg_.shared_seed, meta.epoch, meta.msg_id, r};
          const float f =
              r < meta.row_scales.size() ? meta.row_scales[r] : 0.0f;
          const std::size_t real = split.real_len(r);
          if (real == padded) {
            // Full row: decode straight into the output slice, no bounce
            // through scratch.
            rht_decode_row_to(heads, tails, trimmed_mask, f, key,
                              std::span(out.values).subspan(row_base, padded));
          } else {
            rht_decode_row_into(heads, tails, trimmed_mask, f, key, row);
            std::copy_n(row.begin(), real, out.values.begin() + row_base);
          }
          // Padded coordinates don't count toward stats. Branchless sums
          // vectorize; lost falls out of the other two.
          std::size_t full = 0, trim = 0;
          for (std::size_t i = 0; i < real; ++i) {
            full += state[i] == 0;
            trim += state[i] == 1;
          }
          row_stats[r].full_coords = full;
          row_stats[r].trimmed_coords = trim;
          row_stats[r].lost_coords = real - full - trim;
        }
      });
      for (const DecodeStats& rs : row_stats) {
        out.stats.full_coords += rs.full_coords;
        out.stats.trimmed_coords += rs.trimmed_coords;
        out.stats.lost_coords += rs.lost_coords;
      }
      break;
    }
  }
  const CodecTelemetry& t = CodecTelemetry::get();
  t.dec_messages.add();
  t.dec_full.add(out.stats.full_coords);
  t.dec_trimmed.add(out.stats.trimmed_coords);
  t.dec_lost.add(out.stats.lost_coords);
  if (out.stats.total_coords > 0) {
    t.loss_fraction.observe(
        static_cast<double>(out.stats.trimmed_coords + out.stats.lost_coords) /
        static_cast<double>(out.stats.total_coords));
  }
  return out;
}

}  // namespace trimgrad::core
