#include "core/metrics_export.h"

#include <cstdio>
#include <fstream>

namespace trimgrad::core {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string metrics_to_json(const MetricsRegistry::Snapshot& snap) {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, c.name);
    out += "\":";
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, g.name);
    out += "\":";
    append_double(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, h.name);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      append_double(out, h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "],\"total\":";
    out += std::to_string(h.total);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string metrics_to_json(const MetricsRegistry& registry) {
  return metrics_to_json(registry.snapshot());
}

bool write_metrics_json(const std::string& path,
                        const MetricsRegistry& registry) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string json = metrics_to_json(registry);
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.put('\n');
  return static_cast<bool>(file);
}

}  // namespace trimgrad::core
