// Parallel-scaling microbench for the threaded hot paths (see ISSUE 2 /
// DESIGN.md threading model): row-parallel RHT encode+decode, the blocked
// GEMM kernels, message-level EDEN, and one DDP trainer round, each timed
// at pool sizes 1/2/4/8 against the single-thread baseline. Per-kernel
// sections (fwht, quantize, bitpack, crc32c) time the single-thread SIMD
// primitives those paths are built from — flat across thread counts by
// construction, but sensitive to the active ISA (reported in the JSON as
// "isa").
//
// Emits a human-readable table on stdout and machine-readable
// BENCH_parallel.json in the working directory. Also cross-checks that the
// decoded gradients hash identically at every thread count — the
// determinism contract the unit tests enforce, re-verified here at bench
// scale. Speedups saturate at the machine's core count (reported in the
// JSON as hardware_threads); on a single-core container the curves are
// flat by construction.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <span>
#include <thread>
#include <vector>

#include "collective/inject_channel.h"
#include "core/bitpack.h"
#include "core/codec.h"
#include "core/eden.h"
#include "core/hadamard.h"
#include "core/prng.h"
#include "core/simd.h"
#include "core/threadpool.h"
#include "core/wire.h"
#include "ddp/trainer.h"
#include "ml/data.h"
#include "ml/model.h"
#include "ml/tensor.h"

namespace {

using Clock = std::chrono::steady_clock;
using trimgrad::core::ThreadPool;

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

std::uint64_t fnv(std::uint64_t h, const float* p, std::size_t n) {
  // FNV-style mix over 8-byte blocks. The determinism cross-check only
  // needs equality within one run, and the hash sits inside the timed
  // sections — the byte-at-a-time dependent-multiply chain was costing more
  // than some of the kernels being measured.
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  const std::size_t bytes = n * sizeof(float);
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, b + i, 8);
    h = (h ^ w) * 1099511628211ULL;
  }
  for (; i < bytes; ++i) {
    h = (h ^ b[i]) * 1099511628211ULL;
  }
  return h;
}

struct Section {
  const char* name;
  std::vector<double> seconds;   // one per thread count
  std::vector<std::uint64_t> hashes;
  std::uint64_t items = 0;       // work units per rep, for throughput
};

}  // namespace

int main() {
  using namespace trimgrad;

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  // TRIMGRAD_SMOKE shrinks every workload for CI smoke runs. The JSON
  // carries per-section item counts, so throughput (items/s) stays
  // comparable against a full-size baseline.
  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;

  // --- Workloads -----------------------------------------------------------
  // Codec: a 4M-coordinate gradient (16 MB) in the paper's 2^15-entry rows
  // (smoke: 512K coordinates).
  core::Xoshiro256 rng(7);
  std::vector<float> grad(std::size_t{1} << (smoke ? 19 : 22));
  for (auto& x : grad) x = rng.uniform(-1.0f, 1.0f);
  core::CodecConfig ccfg;
  ccfg.scheme = core::Scheme::kRHT;

  // GEMM: C(512x768) += A(512x640)·B(640x768), ~250 MFLOP per call.
  const std::size_t M = smoke ? 128 : 512, K = smoke ? 160 : 640,
                    N = smoke ? 192 : 768;
  std::vector<float> ga(M * K), gb(K * N), gc(M * N);
  for (auto& x : ga) x = rng.uniform(-1.0f, 1.0f);
  for (auto& x : gb) x = rng.uniform(-1.0f, 1.0f);

  // Trainer: one epoch of a small MLP DDP run over a clean channel.
  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 16;
  // Smoke keeps the full global batch (below) so per-round fixed overhead
  // doesn't skew items/s; only the number of rounds shrinks.
  dcfg.train_per_class = smoke ? 12 : 24;
  dcfg.test_per_class = 4;
  ml::SynthCifar data(dcfg);
  ddp::TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 48;
  tcfg.epochs = 1;
  tcfg.eval_every = 0;
  tcfg.codec.scheme = core::Scheme::kRHT;
  tcfg.codec.rht_row_len = std::size_t{1} << 12;

  Section s_codec{"rht_encode_decode", {}, {}, grad.size()};
  Section s_eden{"eden_encode_decode", {}, {}, grad.size()};
  Section s_gemm{"gemm", {}, {}, static_cast<std::uint64_t>(M) * K * N};
  Section s_trainer{"trainer_round", {}, {},
                    static_cast<std::uint64_t>(dcfg.classes) *
                        dcfg.train_per_class};

  // Per-kernel sections: single-thread SIMD primitives, items = floats (or
  // bytes for crc32c) per rep. Scratch shared across reps; each rep
  // reinitializes from grad so the work is identical.
  Section s_fwht{"fwht", {}, {}, grad.size()};
  Section s_quant{"quantize", {}, {}, grad.size()};
  Section s_bitpack{"bitpack", {}, {}, grad.size()};
  Section s_crc{"crc32c", {}, {}, grad.size() * sizeof(float)};
  const std::size_t kRow = std::size_t{1} << 12;
  std::vector<float> k_scratch(grad.size());
  std::vector<std::uint8_t> k_heads(grad.size());
  std::vector<std::uint32_t> k_tails(grad.size());
  std::vector<std::uint8_t> k_heads2(grad.size());
  std::vector<std::uint32_t> k_tails2(grad.size());
  const std::vector<std::uint8_t> k_trim(grad.size(), 0);

  const int reps = smoke ? 2 : 3;
  const int trainer_reps = smoke ? 1 : 2;
  for (const std::size_t t : thread_counts) {
    ThreadPool::set_global_threads(t);

    // RHT encode + decode round trip. Every rep produces the identical
    // output (that is the determinism contract under test), so the
    // cross-thread-count hash is taken once after timing rather than
    // spending hash time inside the measured region.
    core::TrimmableEncoder enc(ccfg);
    core::TrimmableDecoder dec(ccfg);
    core::DecodeResult codec_out;
    s_codec.seconds.push_back(time_best_of(reps, [&] {
      auto msg = enc.encode(grad, 1, 1);
      codec_out = dec.decode(msg.packets, msg.meta);
    }));
    s_codec.hashes.push_back(fnv(1469598103934665603ULL,
                                 codec_out.values.data(),
                                 codec_out.values.size()));

    // EDEN 4-bit message round trip.
    std::vector<float> eden_out;
    s_eden.seconds.push_back(time_best_of(reps, [&] {
      auto msg = core::eden_encode_message(grad, 1, 1, 1, 4);
      eden_out = core::eden_decode_message(msg, 1, 1, 1);
    }));
    s_eden.hashes.push_back(
        fnv(1469598103934665603ULL, eden_out.data(), eden_out.size()));

    // GEMM (forward-shaped kernel).
    s_gemm.seconds.push_back(time_best_of(reps, [&] {
      std::fill(gc.begin(), gc.end(), 0.0f);
      ml::gemm_accumulate(ga.data(), gb.data(), gc.data(), M, K, N);
    }));
    s_gemm.hashes.push_back(
        fnv(1469598103934665603ULL, gc.data(), gc.size()));

    // One DDP epoch (fresh trainer each rep so state is identical).
    std::uint64_t tr_hash = 1469598103934665603ULL;
    s_trainer.seconds.push_back(time_best_of(trainer_reps, [&] {
      collective::InjectChannel::Config chcfg;
      chcfg.world = tcfg.world;
      collective::InjectChannel channel(chcfg);
      ddp::DdpTrainer trainer(data, channel, tcfg, [&dcfg] {
        ml::ModelConfig mcfg;
        mcfg.classes = dcfg.classes;
        mcfg.height = dcfg.height;
        mcfg.width = dcfg.width;
        return ml::make_mlp(mcfg, 128);
      });
      const auto rec = trainer.run_epoch(0);
      const auto params = trainer.replica(0).flat_params();
      tr_hash = fnv(tr_hash, params.data(), params.size());
      const float loss = static_cast<float>(rec.train_loss);
      tr_hash = fnv(tr_hash, &loss, 1);
    }));
    s_trainer.hashes.push_back(tr_hash);

    // FWHT: orthonormal transform over 4K-float rows (the paper's codec
    // row shape), fresh data per rep.
    s_fwht.seconds.push_back(time_best_of(reps, [&] {
      std::copy(grad.begin(), grad.end(), k_scratch.begin());
      for (std::size_t at = 0; at + kRow <= k_scratch.size(); at += kRow) {
        core::fwht_orthonormal_inplace(
            std::span<float>(k_scratch.data() + at, kRow));
      }
    }));
    s_fwht.hashes.push_back(
        fnv(1469598103934665603ULL, k_scratch.data(), k_scratch.size()));

    // Quantize: sign/magnitude split + join round trip over the gradient.
    s_quant.seconds.push_back(time_best_of(reps, [&] {
      core::simd::split_sign_mag(grad.data(), grad.size(), k_heads.data(),
                                 k_tails.data());
      core::simd::join_sign_mag(k_heads.data(), k_tails.data(), k_trim.data(),
                                1.0f, k_scratch.data(), grad.size());
    }));
    s_quant.hashes.push_back(
        fnv(1469598103934665603ULL, k_scratch.data(), k_scratch.size()));

    // Bitpack: bulk head-bit + 31-bit tail writes, then bulk reads back.
    s_bitpack.seconds.push_back(time_best_of(reps, [&] {
      core::BitWriter hw, tw;
      hw.put_bits8(k_heads.data(), k_heads.size());
      tw.put_run(k_tails.data(), k_tails.size(), 31);
      const auto hb = std::move(hw).finish();
      const auto tb = std::move(tw).finish();
      core::BitReader hr(hb), tr(tb);
      hr.get_bits8(k_heads2.data(), k_heads2.size());
      tr.get_run(k_tails2.data(), k_tails2.size(), 31);
    }));
    s_bitpack.hashes.push_back(
        fnv(1469598103934665603ULL,
            reinterpret_cast<const float*>(k_tails2.data()),
            k_tails2.size()));

    // CRC32C over the whole gradient buffer (wire checksum path).
    std::uint32_t crc_out = 0;
    s_crc.seconds.push_back(time_best_of(reps, [&] {
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(grad.data());
      crc_out = core::crc32c(
          std::span<const std::uint8_t>(bytes, grad.size() * sizeof(float)));
    }));
    const float crc_f = static_cast<float>(crc_out);
    s_crc.hashes.push_back(fnv(1469598103934665603ULL, &crc_f, 1));
  }
  ThreadPool::set_global_threads(1);

  const std::vector<Section*> sections = {&s_codec,   &s_eden, &s_gemm,
                                          &s_trainer, &s_fwht, &s_quant,
                                          &s_bitpack, &s_crc};
  bool deterministic = true;
  std::printf("# Parallel scaling (best-of-N wall time; speedup vs 1 thread)\n");
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("# simd isa: %s\n",
              core::simd::to_string(core::simd::active_isa()));
  std::printf("%-20s", "section");
  for (std::size_t t : thread_counts) std::printf(" %7zuT %7s", t, "spdup");
  std::printf("\n");
  for (const Section* s : sections) {
    std::printf("%-20s", s->name);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::printf(" %7.4f %6.2fx", s->seconds[i],
                  s->seconds[0] / s->seconds[i]);
    }
    std::printf("\n");
    for (std::uint64_t h : s->hashes) {
      if (h != s->hashes[0]) deterministic = false;
    }
  }
  std::printf("# bit-exact across thread counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f) {
    std::fprintf(f,
                 "{\n  \"hardware_threads\": %u,\n  \"isa\": \"%s\",\n"
                 "  \"deterministic\": %s,\n  \"smoke\": %s,\n",
                 std::thread::hardware_concurrency(),
                 core::simd::to_string(core::simd::active_isa()),
                 deterministic ? "true" : "false", smoke ? "true" : "false");
    std::fprintf(f, "  \"thread_counts\": [");
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::fprintf(f, "%s%zu", i ? ", " : "", thread_counts[i]);
    }
    std::fprintf(f, "],\n  \"sections\": {\n");
    for (std::size_t si = 0; si < sections.size(); ++si) {
      const Section* s = sections[si];
      std::fprintf(f, "    \"%s\": {\"seconds\": [", s->name);
      for (std::size_t i = 0; i < s->seconds.size(); ++i) {
        std::fprintf(f, "%s%.6f", i ? ", " : "", s->seconds[i]);
      }
      std::fprintf(f, "], \"speedup\": [");
      for (std::size_t i = 0; i < s->seconds.size(); ++i) {
        std::fprintf(f, "%s%.3f", i ? ", " : "",
                     s->seconds[0] / s->seconds[i]);
      }
      std::fprintf(f, "], \"items\": %llu, \"throughput\": %.1f}%s\n",
                   static_cast<unsigned long long>(s->items),
                   static_cast<double>(s->items) / s->seconds[0],
                   si + 1 < sections.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_parallel.json\n");
  }
  return deterministic ? 0 : 1;
}
