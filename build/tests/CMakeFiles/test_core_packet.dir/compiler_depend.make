# Empty compiler generated dependencies file for test_core_packet.
# This may be replaced when dependencies are built.
