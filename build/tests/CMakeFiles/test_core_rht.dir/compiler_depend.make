# Empty compiler generated dependencies file for test_core_rht.
# This may be replaced when dependencies are built.
