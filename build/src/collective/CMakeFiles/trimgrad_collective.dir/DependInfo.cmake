
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collective/allgather.cpp" "src/collective/CMakeFiles/trimgrad_collective.dir/allgather.cpp.o" "gcc" "src/collective/CMakeFiles/trimgrad_collective.dir/allgather.cpp.o.d"
  "/root/repo/src/collective/allreduce.cpp" "src/collective/CMakeFiles/trimgrad_collective.dir/allreduce.cpp.o" "gcc" "src/collective/CMakeFiles/trimgrad_collective.dir/allreduce.cpp.o.d"
  "/root/repo/src/collective/inject_channel.cpp" "src/collective/CMakeFiles/trimgrad_collective.dir/inject_channel.cpp.o" "gcc" "src/collective/CMakeFiles/trimgrad_collective.dir/inject_channel.cpp.o.d"
  "/root/repo/src/collective/sim_channel.cpp" "src/collective/CMakeFiles/trimgrad_collective.dir/sim_channel.cpp.o" "gcc" "src/collective/CMakeFiles/trimgrad_collective.dir/sim_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/trimgrad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/trimgrad_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
