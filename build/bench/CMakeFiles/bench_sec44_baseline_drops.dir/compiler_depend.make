# Empty compiler generated dependencies file for bench_sec44_baseline_drops.
# This may be replaced when dependencies are built.
