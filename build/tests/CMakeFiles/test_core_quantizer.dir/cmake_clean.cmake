file(REMOVE_RECURSE
  "CMakeFiles/test_core_quantizer.dir/core/quantizer_test.cpp.o"
  "CMakeFiles/test_core_quantizer.dir/core/quantizer_test.cpp.o.d"
  "test_core_quantizer"
  "test_core_quantizer.pdb"
  "test_core_quantizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_quantizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
