#include "ml/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace trimgrad::ml {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::uint32_t> labels) {
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  assert(labels.size() == batch);

  LossResult out;
  out.grad = Tensor({batch, classes});
  double total = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = logits.ptr() + i * classes;
    float* grow = out.grad.ptr() + i * classes;
    const float mx = *std::max_element(row, row + classes);
    double denom = 0.0;
    for (std::size_t c = 0; c < classes; ++c)
      denom += std::exp(static_cast<double>(row[c]) - mx);
    const double log_denom = std::log(denom);
    const std::uint32_t label = labels[i];
    total -= (static_cast<double>(row[label]) - mx - log_denom);
    const float inv_b = 1.0f / static_cast<float>(batch);
    for (std::size_t c = 0; c < classes; ++c) {
      const double p = std::exp(static_cast<double>(row[c]) - mx) / denom;
      grow[c] = (static_cast<float>(p) - (c == label ? 1.0f : 0.0f)) * inv_b;
    }
  }
  out.loss = total / static_cast<double>(batch);
  return out;
}

double top_k_accuracy(const Tensor& logits,
                      std::span<const std::uint32_t> labels, std::size_t k) {
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  assert(labels.size() == batch);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = logits.ptr() + i * classes;
    const float target = row[labels[i]];
    // Rank of the label's logit: count entries strictly greater.
    std::size_t greater = 0;
    for (std::size_t c = 0; c < classes; ++c)
      greater += row[c] > target ? 1 : 0;
    if (greater < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(batch);
}

}  // namespace trimgrad::ml
