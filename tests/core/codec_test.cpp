// Integration tests: gradient -> packets -> (trim/lose) -> decode.
#include "core/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/prng.h"
#include "core/stats.h"

namespace trimgrad::core {
namespace {

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

CodecConfig small_cfg(Scheme scheme) {
  CodecConfig cfg;
  cfg.scheme = scheme;
  cfg.rht_row_len = 1 << 10;  // small rows keep tests fast
  cfg.shared_seed = 99;
  return cfg;
}

/// Trim a deterministic Bernoulli(p) subset of packets.
std::size_t trim_fraction(std::vector<GradientPacket>& pkts, double rate,
                          std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::size_t trimmed = 0;
  for (auto& p : pkts) {
    if (rng.bernoulli(rate)) {
      p.trim();
      ++trimmed;
    }
  }
  return trimmed;
}

class CodecAllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(CodecAllSchemes, UntrimmedRoundTripIsNearExact) {
  const auto v = gaussian_vec(5000, 1);
  TrimmableEncoder enc(small_cfg(GetParam()));
  TrimmableDecoder dec(small_cfg(GetParam()));
  const EncodedMessage msg = enc.encode(v, 7, 3);
  const DecodeResult out = dec.decode(msg.packets, msg.meta);
  ASSERT_EQ(out.values.size(), v.size());
  EXPECT_EQ(out.stats.full_coords, v.size());
  EXPECT_EQ(out.stats.trimmed_coords, 0u);
  EXPECT_EQ(out.stats.lost_coords, 0u);
  // Baseline/sign/RHT are bit-exact (RHT up to IRHT rounding);
  // SQ/SD drop one mantissa LSB.
  EXPECT_LT(nmse(out.values, v), 1e-9) << to_string(GetParam());
}

TEST_P(CodecAllSchemes, MetaDescribesTheMessage) {
  const auto v = gaussian_vec(3000, 2);
  TrimmableEncoder enc(small_cfg(GetParam()));
  const EncodedMessage msg = enc.encode(v, 12, 4);
  EXPECT_EQ(msg.meta.msg_id, 12u);
  EXPECT_EQ(msg.meta.epoch, 4u);
  EXPECT_EQ(msg.meta.scheme, GetParam());
  EXPECT_EQ(msg.meta.total_coords, 3000u);
}

TEST_P(CodecAllSchemes, PacketsCoverAllCoordinatesExactlyOnce) {
  const auto v = gaussian_vec(4321, 3);
  TrimmableEncoder enc(small_cfg(GetParam()));
  const EncodedMessage msg = enc.encode(v, 1, 1);
  std::vector<int> cover(v.size() + 2048, 0);
  for (const auto& p : msg.packets) {
    for (std::size_t j = 0; j < p.n_coords; ++j) ++cover[p.coord_base + j];
  }
  // Every real coordinate covered exactly once (RHT rows may also carry
  // padded coordinates past the end; those land beyond v.size()).
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(cover[i], 1) << "coord " << i;
}

TEST_P(CodecAllSchemes, TrimmedPacketsShrinkOnTheWire) {
  const auto v = gaussian_vec(2000, 4);
  TrimmableEncoder enc(small_cfg(GetParam()));
  EncodedMessage msg = enc.encode(v, 1, 1);
  const std::size_t before = msg.total_wire_bytes();
  for (auto& p : msg.packets) p.trim();
  const std::size_t after = msg.total_wire_bytes();
  EXPECT_LT(after, before);
  if (GetParam() != Scheme::kBaseline) {
    // P=1/Q=31 split: trimmed size should be a small fraction.
    EXPECT_LT(static_cast<double>(after) / before, 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, CodecAllSchemes,
                         ::testing::Values(Scheme::kBaseline, Scheme::kSign,
                                           Scheme::kSQ, Scheme::kSD,
                                           Scheme::kRHT),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           return to_string(info.param);
                         });

TEST(CodecBaseline, TrimmedPacketsLoseCoordinates) {
  const auto v = gaussian_vec(2000, 5);
  TrimmableEncoder enc(small_cfg(Scheme::kBaseline));
  TrimmableDecoder dec(small_cfg(Scheme::kBaseline));
  EncodedMessage msg = enc.encode(v, 1, 1);
  msg.packets[0].trim();
  const DecodeResult out = dec.decode(msg.packets, msg.meta);
  EXPECT_GT(out.stats.lost_coords, 0u);
  EXPECT_EQ(out.stats.trimmed_coords, 0u);
  // Lost coords decode to zero.
  EXPECT_FLOAT_EQ(out.values[0], 0.0f);
}

TEST(CodecScalar, TrimmedDecodeUsesHeads) {
  const auto v = gaussian_vec(2000, 6);
  for (Scheme s : {Scheme::kSign, Scheme::kSQ, Scheme::kSD}) {
    TrimmableEncoder enc(small_cfg(s));
    TrimmableDecoder dec(small_cfg(s));
    EncodedMessage msg = enc.encode(v, 2, 9);
    const std::size_t n_trim = trim_fraction(msg.packets, 0.5, 77);
    ASSERT_GT(n_trim, 0u);
    const DecodeResult out = dec.decode(msg.packets, msg.meta);
    EXPECT_GT(out.stats.trimmed_coords, 0u);
    EXPECT_EQ(out.stats.lost_coords, 0u);
    EXPECT_EQ(out.stats.full_coords + out.stats.trimmed_coords, v.size());
    // Estimate is still correlated with the truth.
    EXPECT_LT(nmse(out.values, v), 8.0) << to_string(s);
  }
}

TEST(CodecScalar, SdSharedDitherAgreesAcrossProcesses) {
  // Decoder regenerates dithers purely from (shared_seed, epoch, msg_id):
  // different decoder object, same config -> same result.
  const auto v = gaussian_vec(1500, 7);
  TrimmableEncoder enc(small_cfg(Scheme::kSD));
  EncodedMessage msg = enc.encode(v, 8, 15);
  for (auto& p : msg.packets) p.trim();
  const DecodeResult a = TrimmableDecoder(small_cfg(Scheme::kSD)).decode(msg.packets, msg.meta);
  const DecodeResult b = TrimmableDecoder(small_cfg(Scheme::kSD)).decode(msg.packets, msg.meta);
  EXPECT_EQ(a.values, b.values);
}

TEST(CodecScalar, SdWithWrongSeedDecodesWorse) {
  const auto v = gaussian_vec(4000, 8);
  TrimmableEncoder enc(small_cfg(Scheme::kSD));
  EncodedMessage msg = enc.encode(v, 3, 2);
  for (auto& p : msg.packets) p.trim();
  CodecConfig wrong = small_cfg(Scheme::kSD);
  wrong.shared_seed = 12345;
  const double good = nmse(
      TrimmableDecoder(small_cfg(Scheme::kSD)).decode(msg.packets, msg.meta).values, v);
  const double bad = nmse(
      TrimmableDecoder(wrong).decode(msg.packets, msg.meta).values, v);
  EXPECT_LT(good, bad);
}

TEST(CodecRht, FullyTrimmedStaysAccurate) {
  const auto v = gaussian_vec(10000, 9);
  TrimmableEncoder enc(small_cfg(Scheme::kRHT));
  TrimmableDecoder dec(small_cfg(Scheme::kRHT));
  EncodedMessage msg = enc.encode(v, 4, 6);
  for (auto& p : msg.packets) p.trim();
  const DecodeResult out = dec.decode(msg.packets, msg.meta);
  EXPECT_EQ(out.stats.trimmed_coords, v.size());
  // Unbiased-scale bound: NMSE ≈ π/2 − 1 ≈ 0.571 for gaussian inputs.
  EXPECT_LT(nmse(out.values, v), 0.65);
}

TEST(CodecRht, LostPacketsDegradeGracefully) {
  const auto v = gaussian_vec(8000, 10);
  TrimmableEncoder enc(small_cfg(Scheme::kRHT));
  TrimmableDecoder dec(small_cfg(Scheme::kRHT));
  EncodedMessage msg = enc.encode(v, 4, 6);
  // Drop every 4th packet entirely.
  std::vector<GradientPacket> received;
  for (std::size_t i = 0; i < msg.packets.size(); ++i)
    if (i % 4 != 0) received.push_back(msg.packets[i]);
  const DecodeResult out = dec.decode(received, msg.meta);
  EXPECT_GT(out.stats.lost_coords, 0u);
  EXPECT_LT(nmse(out.values, v), 0.6);
}

TEST(CodecRht, RowScalesOnePerRow) {
  const auto v = gaussian_vec(3 * 1024 + 100, 11);
  TrimmableEncoder enc(small_cfg(Scheme::kRHT));
  const EncodedMessage msg = enc.encode(v, 1, 1);
  EXPECT_EQ(msg.meta.row_scales.size(), 4u);  // 3 full rows + padded tail
  EXPECT_EQ(msg.meta.row_len, 1u << 10);
}

TEST(CodecRht, PacketsNeverSpanRows) {
  const auto v = gaussian_vec(2 * 1024 + 17, 12);
  TrimmableEncoder enc(small_cfg(Scheme::kRHT));
  const EncodedMessage msg = enc.encode(v, 1, 1);
  for (const auto& p : msg.packets) {
    const std::size_t row_start = static_cast<std::size_t>(p.row_id) << 10;
    EXPECT_GE(p.coord_base, row_start);
    EXPECT_LE(p.coord_base + p.n_coords, row_start + (1u << 10));
  }
}

TEST(CodecRht, MixedTrimRatesOrderedByError) {
  const auto v = gaussian_vec(16384, 13);
  TrimmableEncoder enc(small_cfg(Scheme::kRHT));
  TrimmableDecoder dec(small_cfg(Scheme::kRHT));
  double prev = -1;
  for (double rate : {0.0, 0.02, 0.1, 0.5, 1.0}) {
    EncodedMessage msg = enc.encode(v, 1, 1);
    trim_fraction(msg.packets, rate, 1234);
    const double e = nmse(dec.decode(msg.packets, msg.meta).values, v);
    EXPECT_GE(e, prev) << "rate=" << rate;
    prev = e;
  }
}

TEST(CodecMeta, WireBytesSmallComparedToData) {
  // The reliable side channel must stay negligible: one float per 2^15-coord
  // row plus fixed fields.
  const auto v = gaussian_vec(1 << 18, 14);
  CodecConfig cfg = small_cfg(Scheme::kRHT);
  cfg.rht_row_len = std::size_t{1} << 15;
  TrimmableEncoder enc(cfg);
  const EncodedMessage msg = enc.encode(v, 1, 1);
  EXPECT_LT(msg.meta.wire_bytes() * 1000, msg.total_wire_bytes());
}

TEST(CodecEdge, EmptyGradient) {
  TrimmableEncoder enc(small_cfg(Scheme::kRHT));
  TrimmableDecoder dec(small_cfg(Scheme::kRHT));
  const EncodedMessage msg = enc.encode({}, 1, 1);
  EXPECT_TRUE(msg.packets.empty());
  const DecodeResult out = dec.decode(msg.packets, msg.meta);
  EXPECT_TRUE(out.values.empty());
}

TEST(CodecEdge, SingleCoordinate) {
  std::vector<float> v = {3.25f};
  for (Scheme s : {Scheme::kBaseline, Scheme::kSign, Scheme::kRHT}) {
    TrimmableEncoder enc(small_cfg(s));
    TrimmableDecoder dec(small_cfg(s));
    const EncodedMessage msg = enc.encode(v, 1, 1);
    const DecodeResult out = dec.decode(msg.packets, msg.meta);
    ASSERT_EQ(out.values.size(), 1u);
    EXPECT_NEAR(out.values[0], 3.25f, 1e-5f) << to_string(s);
  }
}

TEST(CodecEdge, MessageSmallerThanOnePacket) {
  const auto v = gaussian_vec(10, 15);
  TrimmableEncoder enc(small_cfg(Scheme::kSign));
  TrimmableDecoder dec(small_cfg(Scheme::kSign));
  const EncodedMessage msg = enc.encode(v, 1, 1);
  EXPECT_EQ(msg.packets.size(), 1u);
  EXPECT_LT(nmse(dec.decode(msg.packets, msg.meta).values, v), 1e-12);
}

TEST(CodecEdge, OutOfOrderPacketsDecodeIdentically) {
  const auto v = gaussian_vec(6000, 16);
  TrimmableEncoder enc(small_cfg(Scheme::kRHT));
  TrimmableDecoder dec(small_cfg(Scheme::kRHT));
  EncodedMessage msg = enc.encode(v, 1, 1);
  const DecodeResult in_order = dec.decode(msg.packets, msg.meta);
  std::reverse(msg.packets.begin(), msg.packets.end());
  const DecodeResult reversed = dec.decode(msg.packets, msg.meta);
  EXPECT_EQ(in_order.values, reversed.values);
}

}  // namespace
}  // namespace trimgrad::core
