#include "core/rht_codec.h"

#include <cassert>

#include "core/bitpack.h"
#include "core/hadamard.h"
#include "core/metrics.h"
#include "core/stats.h"

namespace trimgrad::core {

namespace {
constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kMagMask = 0x7fffffffu;

// Row codecs run inside parallel_for workers — counter increments go to
// per-thread shards, whose integer reduction keeps snapshots bit-identical
// for any pool size.
struct RhtTelemetry {
  Counter rows_encoded, rows_decoded;

  static const RhtTelemetry& get() {
    static const RhtTelemetry t{
        MetricsRegistry::global().counter("codec.rht.rows_encoded"),
        MetricsRegistry::global().counter("codec.rht.rows_decoded"),
    };
    return t;
  }
};

}  // namespace

float rht_coord_from_parts(bool head, std::uint32_t tail) noexcept {
  // head = 1 means non-negative; tail carries exponent+mantissa.
  return bits_float((head ? 0u : kSignMask) | (tail & kMagMask));
}

float rht_coord_trimmed(bool head, float scale_f) noexcept {
  return head ? scale_f : -scale_f;
}

RhtEncodedRow rht_encode_row(std::span<const float> row, const StreamKey& key) {
  assert(is_pow2(row.size()));
  std::vector<float> rotated(row.begin(), row.end());
  SharedRng rng(key);
  rht_inplace(rotated, rng);

  RhtEncodedRow out;
  out.heads.reserve(rotated.size());
  out.tails.reserve(rotated.size());
  for (float r : rotated) {
    const std::uint32_t b = float_bits(r);
    out.heads.push_back((b & kSignMask) == 0 ? 1 : 0);
    out.tails.push_back(b & kMagMask);
  }

  // Unbiased scale f = ‖V‖₂² / ‖R‖₁. The rotation is orthonormal so
  // ‖V‖₂² = ‖R‖₂²; using the pre-rotation norm follows the paper exactly.
  const double l1 = l1_norm(rotated);
  out.scale_f = l1 > 0.0 ? static_cast<float>(l2_norm_sq(row) / l1) : 0.0f;
  RhtTelemetry::get().rows_encoded.add();
  return out;
}

std::vector<float> rht_decode_row(std::span<const std::uint8_t> heads,
                                  std::span<const std::uint32_t> tails,
                                  std::span<const std::uint8_t> trimmed,
                                  float scale_f, const StreamKey& key) {
  assert(heads.size() == tails.size());
  assert(heads.size() == trimmed.size());
  assert(is_pow2(heads.size()));

  std::vector<float> r_hat(heads.size());
  for (std::size_t i = 0; i < heads.size(); ++i) {
    r_hat[i] = trimmed[i] != 0
                   ? rht_coord_trimmed(heads[i] != 0, scale_f)
                   : rht_coord_from_parts(heads[i] != 0, tails[i]);
  }
  SharedRng rng(key);
  irht_inplace(r_hat, rng);
  RhtTelemetry::get().rows_decoded.add();
  return r_hat;
}

}  // namespace trimgrad::core
