file(REMOVE_RECURSE
  "CMakeFiles/test_core_prng.dir/core/prng_test.cpp.o"
  "CMakeFiles/test_core_prng.dir/core/prng_test.cpp.o.d"
  "test_core_prng"
  "test_core_prng.pdb"
  "test_core_prng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
