
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/agg_switch.cpp" "src/net/CMakeFiles/trimgrad_net.dir/agg_switch.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/agg_switch.cpp.o.d"
  "/root/repo/src/net/ecn_transport.cpp" "src/net/CMakeFiles/trimgrad_net.dir/ecn_transport.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/ecn_transport.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/net/CMakeFiles/trimgrad_net.dir/frame.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/frame.cpp.o.d"
  "/root/repo/src/net/injector.cpp" "src/net/CMakeFiles/trimgrad_net.dir/injector.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/injector.cpp.o.d"
  "/root/repo/src/net/pull_transport.cpp" "src/net/CMakeFiles/trimgrad_net.dir/pull_transport.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/pull_transport.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/net/CMakeFiles/trimgrad_net.dir/queue.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/queue.cpp.o.d"
  "/root/repo/src/net/sim.cpp" "src/net/CMakeFiles/trimgrad_net.dir/sim.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/sim.cpp.o.d"
  "/root/repo/src/net/switch_node.cpp" "src/net/CMakeFiles/trimgrad_net.dir/switch_node.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/switch_node.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/trimgrad_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/traffic.cpp" "src/net/CMakeFiles/trimgrad_net.dir/traffic.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/traffic.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/net/CMakeFiles/trimgrad_net.dir/transport.cpp.o" "gcc" "src/net/CMakeFiles/trimgrad_net.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/trimgrad_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
