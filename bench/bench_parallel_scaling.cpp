// Parallel-scaling microbench for the threaded hot paths (see ISSUE 2 /
// DESIGN.md threading model): row-parallel RHT encode+decode, the blocked
// GEMM kernels, message-level EDEN, and one DDP trainer round, each timed
// at pool sizes 1/2/4/8 against the single-thread baseline.
//
// Emits a human-readable table on stdout and machine-readable
// BENCH_parallel.json in the working directory. Also cross-checks that the
// decoded gradients hash identically at every thread count — the
// determinism contract the unit tests enforce, re-verified here at bench
// scale. Speedups saturate at the machine's core count (reported in the
// JSON as hardware_threads); on a single-core container the curves are
// flat by construction.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "collective/inject_channel.h"
#include "core/codec.h"
#include "core/eden.h"
#include "core/prng.h"
#include "core/threadpool.h"
#include "ddp/trainer.h"
#include "ml/data.h"
#include "ml/model.h"
#include "ml/tensor.h"

namespace {

using Clock = std::chrono::steady_clock;
using trimgrad::core::ThreadPool;

double time_best_of(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = Clock::now();
    fn();
    const double s = std::chrono::duration<double>(Clock::now() - t0).count();
    if (s < best) best = s;
  }
  return best;
}

std::uint64_t fnv(std::uint64_t h, const float* p, std::size_t n) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n * sizeof(float); ++i) {
    h = (h ^ b[i]) * 1099511628211ULL;
  }
  return h;
}

struct Section {
  const char* name;
  std::vector<double> seconds;   // one per thread count
  std::vector<std::uint64_t> hashes;
  std::uint64_t items = 0;       // work units per rep, for throughput
};

}  // namespace

int main() {
  using namespace trimgrad;

  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};

  // TRIMGRAD_SMOKE shrinks every workload for CI smoke runs. The JSON
  // carries per-section item counts, so throughput (items/s) stays
  // comparable against a full-size baseline.
  const bool smoke = std::getenv("TRIMGRAD_SMOKE") != nullptr;

  // --- Workloads -----------------------------------------------------------
  // Codec: a 4M-coordinate gradient (16 MB) in the paper's 2^15-entry rows
  // (smoke: 512K coordinates).
  core::Xoshiro256 rng(7);
  std::vector<float> grad(std::size_t{1} << (smoke ? 19 : 22));
  for (auto& x : grad) x = rng.uniform(-1.0f, 1.0f);
  core::CodecConfig ccfg;
  ccfg.scheme = core::Scheme::kRHT;

  // GEMM: C(512x768) += A(512x640)·B(640x768), ~250 MFLOP per call.
  const std::size_t M = smoke ? 128 : 512, K = smoke ? 160 : 640,
                    N = smoke ? 192 : 768;
  std::vector<float> ga(M * K), gb(K * N), gc(M * N);
  for (auto& x : ga) x = rng.uniform(-1.0f, 1.0f);
  for (auto& x : gb) x = rng.uniform(-1.0f, 1.0f);

  // Trainer: one epoch of a small MLP DDP run over a clean channel.
  ml::SynthCifarConfig dcfg;
  dcfg.classes = 10;
  dcfg.height = dcfg.width = 16;
  // Smoke keeps the full global batch (below) so per-round fixed overhead
  // doesn't skew items/s; only the number of rounds shrinks.
  dcfg.train_per_class = smoke ? 12 : 24;
  dcfg.test_per_class = 4;
  ml::SynthCifar data(dcfg);
  ddp::TrainerConfig tcfg;
  tcfg.world = 4;
  tcfg.global_batch = 48;
  tcfg.epochs = 1;
  tcfg.eval_every = 0;
  tcfg.codec.scheme = core::Scheme::kRHT;
  tcfg.codec.rht_row_len = std::size_t{1} << 12;

  Section s_codec{"rht_encode_decode", {}, {}, grad.size()};
  Section s_eden{"eden_encode_decode", {}, {}, grad.size()};
  Section s_gemm{"gemm", {}, {}, static_cast<std::uint64_t>(M) * K * N};
  Section s_trainer{"trainer_round", {}, {},
                    static_cast<std::uint64_t>(dcfg.classes) *
                        dcfg.train_per_class};

  const int reps = smoke ? 2 : 3;
  const int trainer_reps = smoke ? 1 : 2;
  for (const std::size_t t : thread_counts) {
    ThreadPool::set_global_threads(t);

    // RHT encode + decode round trip.
    core::TrimmableEncoder enc(ccfg);
    core::TrimmableDecoder dec(ccfg);
    std::uint64_t codec_hash = 1469598103934665603ULL;
    s_codec.seconds.push_back(time_best_of(reps, [&] {
      auto msg = enc.encode(grad, 1, 1);
      auto out = dec.decode(msg.packets, msg.meta);
      codec_hash = fnv(codec_hash, out.values.data(), out.values.size());
    }));
    s_codec.hashes.push_back(codec_hash);

    // EDEN 4-bit message round trip.
    std::uint64_t eden_hash = 1469598103934665603ULL;
    s_eden.seconds.push_back(time_best_of(reps, [&] {
      auto msg = core::eden_encode_message(grad, 1, 1, 1, 4);
      auto out = core::eden_decode_message(msg, 1, 1, 1);
      eden_hash = fnv(eden_hash, out.data(), out.size());
    }));
    s_eden.hashes.push_back(eden_hash);

    // GEMM (forward-shaped kernel).
    std::uint64_t gemm_hash = 1469598103934665603ULL;
    s_gemm.seconds.push_back(time_best_of(reps, [&] {
      std::fill(gc.begin(), gc.end(), 0.0f);
      ml::gemm_accumulate(ga.data(), gb.data(), gc.data(), M, K, N);
      gemm_hash = fnv(gemm_hash, gc.data(), gc.size());
    }));
    s_gemm.hashes.push_back(gemm_hash);

    // One DDP epoch (fresh trainer each rep so state is identical).
    std::uint64_t tr_hash = 1469598103934665603ULL;
    s_trainer.seconds.push_back(time_best_of(trainer_reps, [&] {
      collective::InjectChannel::Config chcfg;
      chcfg.world = tcfg.world;
      collective::InjectChannel channel(chcfg);
      ddp::DdpTrainer trainer(data, channel, tcfg, [&dcfg] {
        ml::ModelConfig mcfg;
        mcfg.classes = dcfg.classes;
        mcfg.height = dcfg.height;
        mcfg.width = dcfg.width;
        return ml::make_mlp(mcfg, 128);
      });
      const auto rec = trainer.run_epoch(0);
      const auto params = trainer.replica(0).flat_params();
      tr_hash = fnv(tr_hash, params.data(), params.size());
      const float loss = static_cast<float>(rec.train_loss);
      tr_hash = fnv(tr_hash, &loss, 1);
    }));
    s_trainer.hashes.push_back(tr_hash);
  }
  ThreadPool::set_global_threads(1);

  const std::vector<Section*> sections = {&s_codec, &s_eden, &s_gemm,
                                          &s_trainer};
  bool deterministic = true;
  std::printf("# Parallel scaling (best-of-N wall time; speedup vs 1 thread)\n");
  std::printf("# hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("%-20s", "section");
  for (std::size_t t : thread_counts) std::printf(" %7zuT %7s", t, "spdup");
  std::printf("\n");
  for (const Section* s : sections) {
    std::printf("%-20s", s->name);
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::printf(" %7.4f %6.2fx", s->seconds[i],
                  s->seconds[0] / s->seconds[i]);
    }
    std::printf("\n");
    for (std::uint64_t h : s->hashes) {
      if (h != s->hashes[0]) deterministic = false;
    }
  }
  std::printf("# bit-exact across thread counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATION");

  FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f) {
    std::fprintf(f,
                 "{\n  \"hardware_threads\": %u,\n  \"deterministic\": %s,\n"
                 "  \"smoke\": %s,\n",
                 std::thread::hardware_concurrency(),
                 deterministic ? "true" : "false", smoke ? "true" : "false");
    std::fprintf(f, "  \"thread_counts\": [");
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      std::fprintf(f, "%s%zu", i ? ", " : "", thread_counts[i]);
    }
    std::fprintf(f, "],\n  \"sections\": {\n");
    for (std::size_t si = 0; si < sections.size(); ++si) {
      const Section* s = sections[si];
      std::fprintf(f, "    \"%s\": {\"seconds\": [", s->name);
      for (std::size_t i = 0; i < s->seconds.size(); ++i) {
        std::fprintf(f, "%s%.6f", i ? ", " : "", s->seconds[i]);
      }
      std::fprintf(f, "], \"speedup\": [");
      for (std::size_t i = 0; i < s->seconds.size(); ++i) {
        std::fprintf(f, "%s%.3f", i ? ", " : "",
                     s->seconds[0] / s->seconds[i]);
      }
      std::fprintf(f, "], \"items\": %llu, \"throughput\": %.1f}%s\n",
                   static_cast<unsigned long long>(s->items),
                   static_cast<double>(s->items) / s->seconds[0],
                   si + 1 < sections.size() ? "," : "");
    }
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
    std::printf("# wrote BENCH_parallel.json\n");
  }
  return deterministic ? 0 : 1;
}
