file(REMOVE_RECURSE
  "CMakeFiles/test_net_transport.dir/net/transport_test.cpp.o"
  "CMakeFiles/test_net_transport.dir/net/transport_test.cpp.o.d"
  "test_net_transport"
  "test_net_transport.pdb"
  "test_net_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
