// Small statistics helpers used by the codecs.
//
// The scalar schemes need the gradient's standard deviation (σ is the
// decode scale for sign-magnitude; L = 2.5σ clips SQ/SD, per TernGrad).
// The RHT scheme needs the unbiased scale f = ‖V‖₂² / ‖R(V)‖₁ (§3.2).
// These values ride in the small reliable metadata packets that the
// switches never trim.
#pragma once

#include <cstddef>
#include <span>

namespace trimgrad::core {

/// Sum of elements.
double sum(std::span<const float> v) noexcept;

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const float> v) noexcept;

/// Population standard deviation; 0 for inputs of size < 2.
double stddev(std::span<const float> v) noexcept;

/// L1 norm: sum of |v_i|.
double l1_norm(std::span<const float> v) noexcept;

/// Squared L2 norm: sum of v_i².
double l2_norm_sq(std::span<const float> v) noexcept;

/// L2 norm.
double l2_norm(std::span<const float> v) noexcept;

/// Normalized mean squared error between an estimate and a reference:
/// ‖est − ref‖₂² / ‖ref‖₂². Returns 0 when both are zero vectors, and
/// the raw squared error when only the reference is zero.
double nmse(std::span<const float> estimate, std::span<const float> reference) noexcept;

/// Welford single-pass accumulator for streaming mean/variance, used by
/// the simulator's queue-occupancy and FCT statistics.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  ///< population variance
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace trimgrad::core
