// InjectChannel: probabilistic trimming + analytic timing (paper §4 mode).
#pragma once

#include <memory>

#include "collective/channel.h"
#include "net/injector.h"

namespace trimgrad::collective {

/// Analytic time model for one transfer. All concurrent transfers in a
/// batch share the bottleneck, matching an oversubscribed core where the
/// collective's own fan-in is the congestion source.
struct TimeModel {
  double bottleneck_bps = 100e9;  ///< the paper's 100 Gbps testbed links
  net::SimTime base_rtt = 10e-6;
  /// Reliable-transport penalty per dropped packet (detect + retransmit).
  /// Trim-aware flows never pay it; the NCCL-like baseline does, which is
  /// where the §4.4 "5x-10x slower at 1-2% drops" behaviour comes from.
  net::SimTime drop_penalty = 500e-6;
  /// Whether concurrent transfers in a batch share the bottleneck.
  bool shared_bottleneck = true;
};

class InjectChannel : public Channel {
 public:
  struct Config {
    int world = 4;
    net::InjectorConfig injector{};
    TimeModel time{};
    /// Baseline (reliable) semantics: drops/trims are retransmitted at full
    /// size until everything arrives intact; trim/drop coins then cost time
    /// but not gradient fidelity.
    bool reliable = false;
    /// Deterministic congestion: per-batch byte budget at the bottleneck.
    /// When the batch's data bytes exceed it, packets are trimmed from the
    /// back of the batch until they fit (what a drop-tail trimming switch
    /// does to a burst, bench_ablation_adaptiveq's closed loop) — so a
    /// sender that lowers Q genuinely escapes trimming. 0 disables.
    std::uint64_t capacity_bytes = 0;
  };

  explicit InjectChannel(Config cfg) : cfg_(cfg), injector_(cfg.injector) {}

  std::vector<Delivery> transfer(std::vector<TransferRequest> batch) override;
  int world_size() const override { return cfg_.world; }

  /// Adjust the capacity budget between rounds (phased-congestion benches).
  void set_capacity(std::uint64_t bytes) { cfg_.capacity_bytes = bytes; }

  /// Epoch used for transcript-keyed randomness; the trainer advances it.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  core::TrimTranscript* transcript() { return record_ ? &transcript_ : nullptr; }
  void enable_recording() { record_ = true; }
  const core::TrimTranscript& recorded() const { return transcript_; }

 private:
  Config cfg_;
  net::TrimInjector injector_;
  std::uint64_t epoch_ = 0;
  bool record_ = false;
  core::TrimTranscript transcript_;
};

}  // namespace trimgrad::collective
