#include "net/fault_script.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>

#include "core/prng.h"

namespace trimgrad::net {
namespace {

/// Shortest decimal form that round-trips to the exact double (same idiom
/// as ExperimentSpec's serializer): try increasing precision until strtod
/// gives the bits back, so serialize(parse(s)) == s for canonical output.
std::string format_double(double v) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

double parse_double(const std::string& tok, const std::string& line) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultScript: bad number '" + tok +
                                "' in line: " + line);
  }
  if (pos != tok.size())
    throw std::invalid_argument("FaultScript: bad number '" + tok +
                                "' in line: " + line);
  return v;
}

std::uint64_t parse_u64(const std::string& tok, const std::string& line) {
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(tok, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultScript: bad integer '" + tok +
                                "' in line: " + line);
  }
  if (pos != tok.size())
    throw std::invalid_argument("FaultScript: bad integer '" + tok +
                                "' in line: " + line);
  return v;
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> toks;
  std::string t;
  while (is >> t) toks.push_back(std::move(t));
  return toks;
}

void expect_fields(const std::vector<std::string>& toks, std::size_t n,
                   const std::string& line) {
  if (toks.size() != n)
    throw std::invalid_argument("FaultScript: directive '" + toks[0] +
                                "' wants " + std::to_string(n - 1) +
                                " fields in line: " + line);
}

}  // namespace

std::size_t FaultScript::event_count() const noexcept {
  return plane.link_faults.size() + plane.node_faults.size() +
         plane.corrupt_overrides.size() + (plane.corrupt_rate > 0 ? 1u : 0u) +
         (straggler_factor > 1.0 ? 1u : 0u);
}

std::string FaultScript::serialize() const {
  std::ostringstream os;
  os << "faultscript v1\n";
  os << "seed " << plane.seed << '\n';
  os << "corrupt_rate " << format_double(plane.corrupt_rate) << '\n';
  os << "straggler " << format_double(straggler_factor) << '\n';
  for (const auto& c : plane.corrupt_overrides)
    os << "corrupt " << c.node << ' ' << c.port << ' ' << format_double(c.rate)
       << '\n';
  for (const auto& l : plane.link_faults)
    os << "link " << l.node << ' ' << l.port << ' ' << format_double(l.start)
       << ' ' << format_double(l.duration) << ' '
       << format_double(l.bandwidth_scale) << ' '
       << format_double(l.latency_scale) << ' ' << format_double(l.period)
       << ' ' << l.repeats << '\n';
  for (const auto& n : plane.node_faults)
    os << "node " << n.node << ' ' << format_double(n.start) << ' '
       << format_double(n.duration) << ' ' << format_double(n.period) << ' '
       << n.repeats << '\n';
  return os.str();
}

FaultScript FaultScript::parse(const std::string& text) {
  FaultScript s;
  std::istringstream is(text);
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    auto toks = tokens_of(line);
    if (toks.empty() || toks[0][0] == '#') continue;
    if (!saw_header) {
      if (toks.size() != 2 || toks[0] != "faultscript" || toks[1] != "v1")
        throw std::invalid_argument(
            "FaultScript: expected 'faultscript v1' header, got line: " + line);
      saw_header = true;
      continue;
    }
    const std::string& d = toks[0];
    if (d == "seed") {
      expect_fields(toks, 2, line);
      s.plane.seed = parse_u64(toks[1], line);
    } else if (d == "corrupt_rate") {
      expect_fields(toks, 2, line);
      s.plane.corrupt_rate = parse_double(toks[1], line);
    } else if (d == "straggler") {
      expect_fields(toks, 2, line);
      s.straggler_factor = parse_double(toks[1], line);
    } else if (d == "corrupt") {
      expect_fields(toks, 4, line);
      CorruptRule c;
      c.node = static_cast<NodeId>(parse_u64(toks[1], line));
      c.port = static_cast<std::size_t>(parse_u64(toks[2], line));
      c.rate = parse_double(toks[3], line);
      s.plane.corrupt_overrides.push_back(c);
    } else if (d == "link") {
      expect_fields(toks, 9, line);
      LinkFault l;
      l.node = static_cast<NodeId>(parse_u64(toks[1], line));
      l.port = static_cast<std::size_t>(parse_u64(toks[2], line));
      l.start = parse_double(toks[3], line);
      l.duration = parse_double(toks[4], line);
      l.bandwidth_scale = parse_double(toks[5], line);
      l.latency_scale = parse_double(toks[6], line);
      l.period = parse_double(toks[7], line);
      l.repeats = static_cast<std::size_t>(parse_u64(toks[8], line));
      s.plane.link_faults.push_back(l);
    } else if (d == "node") {
      expect_fields(toks, 6, line);
      NodeFault n;
      n.node = static_cast<NodeId>(parse_u64(toks[1], line));
      n.start = parse_double(toks[2], line);
      n.duration = parse_double(toks[3], line);
      n.period = parse_double(toks[4], line);
      n.repeats = static_cast<std::size_t>(parse_u64(toks[5], line));
      s.plane.node_faults.push_back(n);
    } else {
      throw std::invalid_argument("FaultScript: unknown directive in line: " +
                                  line);
    }
  }
  if (!saw_header)
    throw std::invalid_argument("FaultScript: missing 'faultscript v1' header");
  return s;
}

void FaultScript::save(std::ostream& os) const { os << serialize(); }

FaultScript FaultScript::load(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str());
}

FaultScript FaultScript::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("FaultScript: cannot read " + path);
  return load(f);
}

FaultScript FaultScript::sorted() const {
  FaultScript s = *this;
  std::sort(s.plane.corrupt_overrides.begin(), s.plane.corrupt_overrides.end(),
            [](const CorruptRule& a, const CorruptRule& b) {
              return std::tie(a.node, a.port, a.rate) <
                     std::tie(b.node, b.port, b.rate);
            });
  std::sort(s.plane.link_faults.begin(), s.plane.link_faults.end(),
            [](const LinkFault& a, const LinkFault& b) {
              return std::tie(a.node, a.port, a.start, a.duration,
                              a.bandwidth_scale, a.latency_scale, a.period,
                              a.repeats) <
                     std::tie(b.node, b.port, b.start, b.duration,
                              b.bandwidth_scale, b.latency_scale, b.period,
                              b.repeats);
            });
  std::sort(s.plane.node_faults.begin(), s.plane.node_faults.end(),
            [](const NodeFault& a, const NodeFault& b) {
              return std::tie(a.node, a.start, a.duration, a.period,
                              a.repeats) <
                     std::tie(b.node, b.start, b.duration, b.period,
                              b.repeats);
            });
  return s;
}

FaultScript generate_fault_script(const ScriptGenConfig& cfg) {
  FaultScript s;
  s.plane.seed = cfg.seed;
  if (cfg.intensity <= 0) return s;
  const double k = std::min(1.0, cfg.intensity);
  core::Xoshiro256 rng(core::mix64(cfg.seed, 0x6661756c74ULL /* "fault" */));

  // Quantize every drawn time to a 1 µs grid so scripts round-trip through
  // short decimal forms and shrink steps (halving) stay on the grid.
  auto draw_time = [&](double lo, double hi) {
    const double t = lo + rng.uniform() * (hi - lo);
    return std::max(lo, 1e-6 * std::round(t / 1e-6));
  };

  // Link faults: expected count scales with intensity and candidate pool.
  if (!cfg.links.empty()) {
    const std::size_t max_links =
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                     k * 4.0 * rng.uniform() + k * 2.0));
    for (std::size_t i = 0; i < max_links; ++i) {
      const auto& [node, port] = cfg.links[rng.below(cfg.links.size())];
      LinkFault l;
      l.node = node;
      l.port = port;
      l.start = draw_time(0.0, cfg.horizon * 0.8);
      l.duration = draw_time(cfg.horizon * 0.01, cfg.horizon * 0.25 * k);
      const double style = rng.uniform();
      if (style < 0.4) {
        // Hard down.
        l.bandwidth_scale = 0.0;
      } else {
        // Brown-out: throttled bandwidth, stretched latency.
        l.bandwidth_scale = 0.1 + 0.8 * rng.uniform();
        l.latency_scale = 1.0 + 3.0 * rng.uniform();
      }
      if (rng.bernoulli(0.3 * k)) {
        // Flap: repeat the window a few times.
        l.period = l.duration * (2.0 + std::floor(3.0 * rng.uniform()));
        l.repeats = 2 + static_cast<std::size_t>(rng.below(3));
      }
      s.plane.link_faults.push_back(l);
    }
  }

  // Node kill windows (rarer: they take a whole switch/host down).
  if (!cfg.nodes.empty() && rng.bernoulli(0.5 * k)) {
    NodeFault n;
    n.node = cfg.nodes[rng.below(cfg.nodes.size())];
    n.start = draw_time(cfg.horizon * 0.1, cfg.horizon * 0.7);
    n.duration = draw_time(cfg.horizon * 0.01, cfg.horizon * 0.15 * k);
    s.plane.node_faults.push_back(n);
  }

  // Global corruption: small rates dominate real deployments, so bias low.
  if (rng.bernoulli(0.6 * k))
    s.plane.corrupt_rate = 1e-6 * std::round(1e6 * 0.02 * k * rng.uniform());

  // Per-port corruption hot spot.
  if (!cfg.links.empty() && rng.bernoulli(0.3 * k)) {
    const auto& [node, port] = cfg.links[rng.below(cfg.links.size())];
    CorruptRule c;
    c.node = node;
    c.port = port;
    c.rate = 1e-6 * std::round(1e6 * 0.1 * k * rng.uniform());
    if (c.rate > 0) s.plane.corrupt_overrides.push_back(c);
  }

  // Straggler factor on the compute side.
  if (rng.bernoulli(0.4 * k))
    s.straggler_factor = 1.0 + 0.5 * std::round(8.0 * k * rng.uniform());
  if (s.straggler_factor <= 1.0) s.straggler_factor = 1.0;

  return s;
}

}  // namespace trimgrad::net
