# Empty compiler generated dependencies file for bench_ablation_adaptiveq.
# This may be replaced when dependencies are built.
