# Empty dependencies file for test_net_ecn.
# This may be replaced when dependencies are built.
