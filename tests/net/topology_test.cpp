#include "net/topology.h"

#include <gtest/gtest.h>

#include <set>

#include "net/traffic.h"
#include "net/transport.h"

namespace trimgrad::net {
namespace {

FabricConfig default_cfg() {
  FabricConfig cfg;
  cfg.edge_link = {100e9, 1e-6};
  cfg.core_link = {100e9, 1e-6};
  return cfg;
}

TEST(Dumbbell, NodeCountsAndIds) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 3, 5, default_cfg());
  EXPECT_EQ(d.left_hosts.size(), 3u);
  EXPECT_EQ(d.right_hosts.size(), 5u);
  EXPECT_EQ(sim.node_count(), 3u + 5u + 2u);
  std::set<NodeId> ids(d.left_hosts.begin(), d.left_hosts.end());
  ids.insert(d.right_hosts.begin(), d.right_hosts.end());
  ids.insert(d.left_switch);
  ids.insert(d.right_switch);
  EXPECT_EQ(ids.size(), 10u);  // all distinct
}

TEST(Dumbbell, CrossTrafficReachesEitherDirection) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 2, 2, default_cfg());
  ManagedFlow l2r(sim, d.left_hosts[0], d.right_hosts[1], 1,
                  TransportConfig::reliable(), 4);
  ManagedFlow r2l(sim, d.right_hosts[0], d.left_hosts[1], 2,
                  TransportConfig::reliable(), 4);
  l2r.start_at(0.0, make_bulk_items(4, 1500, 0));
  r2l.start_at(0.0, make_bulk_items(4, 1500, 0));
  sim.run();
  EXPECT_TRUE(l2r.done());
  EXPECT_TRUE(r2l.done());
}

TEST(Dumbbell, SameSideTrafficDoesNotCrossBottleneck) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 2, 1, default_cfg());
  ManagedFlow local(sim, d.left_hosts[0], d.left_hosts[1], 1,
                    TransportConfig::reliable(), 4);
  local.start_at(0.0, make_bulk_items(4, 1500, 0));
  sim.run();
  EXPECT_TRUE(local.done());
  // The bottleneck port (core port was created first on each switch) must
  // have carried nothing.
  auto& sw = sim.node(d.left_switch);
  EXPECT_EQ(sw.port(0).queue().counters().enqueued, 0u);
}

TEST(LeafSpine, StructureAndCounts) {
  Simulator sim;
  const LeafSpine t = build_leaf_spine(sim, 3, 2, 4, default_cfg());
  EXPECT_EQ(t.leaves.size(), 3u);
  EXPECT_EQ(t.spines.size(), 2u);
  EXPECT_EQ(t.all_hosts().size(), 12u);
  EXPECT_EQ(sim.node_count(), 3u + 2u + 12u);
  // Each leaf: 2 uplinks + 4 host ports.
  for (NodeId leaf : t.leaves) EXPECT_EQ(sim.node(leaf).port_count(), 6u);
  // Each spine: 3 leaf ports.
  for (NodeId spine : t.spines) EXPECT_EQ(sim.node(spine).port_count(), 3u);
}

TEST(LeafSpine, AnyPairCanCommunicate) {
  Simulator sim;
  const LeafSpine t = build_leaf_spine(sim, 2, 2, 2, default_cfg());
  std::uint32_t flow_id = 1;
  std::vector<std::unique_ptr<ManagedFlow>> flows;
  const auto hosts = t.all_hosts();
  for (NodeId a : hosts) {
    for (NodeId b : hosts) {
      if (a == b) continue;
      auto f = std::make_unique<ManagedFlow>(sim, a, b, flow_id++,
                                             TransportConfig::reliable(), 2);
      f->start_at(0.0, make_bulk_items(2, 1500, 0));
      flows.push_back(std::move(f));
    }
  }
  sim.run();
  for (const auto& f : flows) EXPECT_TRUE(f->done());
  // Nothing unroutable anywhere.
  for (NodeId s : t.spines)
    EXPECT_EQ(static_cast<SwitchNode&>(sim.node(s)).unroutable(), 0u);
  for (NodeId l : t.leaves)
    EXPECT_EQ(static_cast<SwitchNode&>(sim.node(l)).unroutable(), 0u);
}

TEST(LeafSpine, EcmpSpreadsFlowsAcrossSpines) {
  Simulator sim;
  const LeafSpine t = build_leaf_spine(sim, 2, 4, 2, default_cfg());
  // Many flows from leaf 0 to leaf 1; count how many spines carried data.
  std::vector<std::unique_ptr<ManagedFlow>> flows;
  for (std::uint32_t i = 0; i < 64; ++i) {
    auto f = std::make_unique<ManagedFlow>(
        sim, t.hosts[0][i % 2], t.hosts[1][i % 2], 100 + i,
        TransportConfig::reliable(), 2);
    f->start_at(0.0, make_bulk_items(2, 1500, 0));
    flows.push_back(std::move(f));
  }
  sim.run();
  int spines_used = 0;
  for (NodeId s : t.spines) {
    auto& spine = sim.node(s);
    std::uint64_t carried = 0;
    for (std::size_t p = 0; p < spine.port_count(); ++p)
      carried += spine.port(p).queue().counters().enqueued;
    if (carried > 0) ++spines_used;
  }
  EXPECT_GE(spines_used, 3) << "64 flows should hash across >= 3 of 4 spines";
}

TEST(Poisson, BackgroundFlowsLaunchAndComplete) {
  Simulator sim;
  const Dumbbell d = build_dumbbell(sim, 4, 4, default_cfg());
  std::vector<NodeId> hosts = d.left_hosts;
  hosts.insert(hosts.end(), d.right_hosts.begin(), d.right_hosts.end());
  PoissonTraffic::Config cfg;
  cfg.flows_per_sec = 2e5;
  cfg.stop = 0.5e-3;
  cfg.packets_per_flow = 4;
  cfg.transport = TransportConfig::reliable();
  PoissonTraffic bg(sim, hosts, cfg);
  sim.run();
  EXPECT_GT(bg.launched(), 20u);   // ~100 expected
  EXPECT_LT(bg.launched(), 500u);
  EXPECT_EQ(bg.completed(), bg.launched());
  for (SimTime fct : bg.fcts()) EXPECT_GT(fct, 0.0);
}

TEST(Poisson, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    const Dumbbell d = build_dumbbell(sim, 2, 2, default_cfg());
    std::vector<NodeId> hosts = d.left_hosts;
    hosts.insert(hosts.end(), d.right_hosts.begin(), d.right_hosts.end());
    PoissonTraffic::Config cfg;
    cfg.flows_per_sec = 1e5;
    cfg.stop = 0.5e-3;
    cfg.seed = seed;
    PoissonTraffic bg(sim, hosts, cfg);
    sim.run();
    return bg.launched();
  };
  EXPECT_EQ(run(7), run(7));
}

}  // namespace
}  // namespace trimgrad::net
