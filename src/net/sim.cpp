#include "net/sim.h"

#include <cassert>
#include <stdexcept>

#include "core/trace.h"
#include "net/fault_plane.h"

namespace trimgrad::net {

Simulator::Simulator() {
  // While a simulator is alive, trace timestamps read the simulated clock.
  core::TraceLog::global().set_time_source([this] { return now_; });
}

Simulator::~Simulator() {
  // Never leave a dangling clock behind; fall back to the logical ticker.
  core::TraceLog::global().set_time_source({});
}

void Simulator::schedule(SimTime delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  events_.push(Event{now_ + delay, ++event_counter_, std::move(fn)});
}

SimTime Simulator::run() {
  while (!events_.empty()) {
    // priority_queue::top() is const; move out via const_cast is UB-adjacent,
    // so copy the function handle (cheap relative to simulation work).
    Event ev = events_.top();
    events_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    ev.fn();
  }
  return now_;
}

void Simulator::run_until(SimTime t) {
  while (!events_.empty() && events_.top().time <= t) {
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.fn();
  }
  if (now_ < t) now_ = t;
}

Node& Simulator::node(NodeId id) {
  if (id >= nodes_.size()) throw std::out_of_range("bad node id");
  return *nodes_[id];
}

std::size_t Simulator::node_count() const noexcept { return nodes_.size(); }

void Simulator::register_node(std::unique_ptr<Node> node) {
  nodes_.push_back(std::move(node));
}

std::pair<std::size_t, std::size_t> Simulator::connect(NodeId a, NodeId b,
                                                       LinkSpec link,
                                                       QueueConfig qcfg_a,
                                                       QueueConfig qcfg_b) {
  Node& na = node(a);
  Node& nb = node(b);
  na.ports_.push_back(std::make_unique<Port>(link, qcfg_a, b));
  nb.ports_.push_back(std::make_unique<Port>(link, qcfg_b, a));
  return {na.ports_.size() - 1, nb.ports_.size() - 1};
}

bool Simulator::transmit(NodeId from, std::size_t port_idx, Frame frame) {
  Node& n = node(from);
  Port& p = n.port(port_idx);
  if (fault_plane_ != nullptr) {
    // A dead origin node originates nothing; a dead link refuses new
    // frames (the NIC sees carrier loss and drops at the source).
    if (!fault_plane_->node_up(from, now_)) {
      fault_plane_->note_node_drop(from, now_, frame.id);
      return false;
    }
    if (!fault_plane_->link_up(from, port_idx, now_)) {
      fault_plane_->note_link_refused(from, port_idx, now_, frame.id);
      return false;
    }
  }
  const bool accepted = p.queue().enqueue(std::move(frame));
  if (accepted && !p.transmitting_) drain_port(from, port_idx);
  return accepted;
}

void Simulator::drain_port(NodeId node_id, std::size_t port_idx) {
  Node& n = node(node_id);
  Port& p = n.port(port_idx);
  if (fault_plane_ != nullptr &&
      !fault_plane_->link_up(node_id, port_idx, now_)) {
    // The link went down with frames still queued: they are lost with it.
    // transmit() refuses new frames for the rest of the window, so the
    // queue stays empty and the first post-recovery transmit re-kicks us.
    while (auto queued = p.queue().dequeue()) {
      fault_plane_->note_queue_flushed(node_id, port_idx, now_, queued->id);
    }
    p.transmitting_ = false;
    return;
  }
  auto next = p.queue().dequeue();
  if (!next) {
    p.transmitting_ = false;
    return;
  }
  p.transmitting_ = true;
  Frame frame = std::move(*next);
  LinkSpec link = p.link();
  if (fault_plane_ != nullptr) {
    link = fault_plane_->effective_link(node_id, port_idx, now_, p.link());
    fault_plane_->maybe_corrupt(node_id, port_idx, now_, frame);
  }
  const SimTime tx = link.tx_time(frame.size_bytes);
  const SimTime prop = link.latency_s;
  const NodeId peer = p.peer();
  // Link is busy for the serialization time, then pulls the next frame.
  schedule(tx, [this, node_id, port_idx] { drain_port(node_id, port_idx); });
  // The frame lands at the peer after serialization + propagation. Frames
  // already on the wire when a *link* fails still land (they left the
  // queue); frames addressed to a dead *node* are lost on arrival.
  schedule(tx + prop, [this, peer, f = std::move(frame)]() mutable {
    if (fault_plane_ != nullptr && !fault_plane_->node_up(peer, now_)) {
      fault_plane_->note_node_drop(peer, now_, f.id);
      return;
    }
    ++delivered_;
    node(peer).on_frame(std::move(f));
  });
}

std::size_t Node::port_to(NodeId peer) const noexcept {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i]->peer() == peer) return i;
  }
  return ports_.size();
}

}  // namespace trimgrad::net
