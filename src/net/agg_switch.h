// In-network gradient aggregation switch (ATP/SwitchML-style; paper §1).
//
// For registered aggregation groups the switch intercepts gradient data
// frames, sums the payload values of corresponding packets from all W
// workers, and forwards ONE aggregated frame to the server — a W× reduction
// of fan-in traffic at the bottleneck.
//
// Interplay with trimming (the paper's §1 observation that "the servers or
// switches do not adjust the gradient compression level based on network
// congestion" even with INA): a trimmed constituent cannot be aggregated
// without its reliable-channel scale, so the switch *bypasses* it — the
// whole (seq) group falls back to plain forwarding, surfacing exactly the
// INA/compression co-design gap. Counters expose how often that happens.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/agg_support.h"
#include "net/switch_node.h"

namespace trimgrad::net {

class AggSwitchNode : public SwitchNode {
 public:
  AggSwitchNode(Simulator& sim, NodeId id, std::string name)
      : SwitchNode(sim, id, std::move(name)) {}

  /// Register an aggregation group: frames of any `worker_flows[i]` are
  /// aggregated per (seq) across all flows and emitted as a single frame on
  /// flow `output_flow` toward `server`.
  void register_group(std::vector<std::uint32_t> worker_flows,
                      std::uint32_t output_flow, NodeId server);

  void on_frame(Frame frame) override;

  struct Counters {
    std::uint64_t aggregated_frames = 0;  ///< emitted aggregate frames
    std::uint64_t absorbed_frames = 0;    ///< constituents consumed
    std::uint64_t bypassed_frames = 0;    ///< trimmed/unsupported, forwarded
  };
  const Counters& agg_counters() const noexcept { return counters_; }

 private:
  struct PendingSeq {
    std::vector<float> sum;
    std::size_t arrived = 0;
    Frame exemplar;  ///< header template for the aggregate
    bool poisoned = false;  ///< a constituent bypassed: stop aggregating
  };
  struct Group {
    std::vector<std::uint32_t> flows;
    std::uint32_t output_flow = 0;
    NodeId server = kInvalidNode;
    std::unordered_map<std::uint32_t, PendingSeq> pending;  ///< by seq
  };

  void emit_aggregate(Group& group, std::uint32_t seq, PendingSeq& slot);

  std::vector<Group> groups_;
  std::unordered_map<std::uint32_t, std::size_t> flow_to_group_;
  Counters counters_;
};

}  // namespace trimgrad::net
