// Deterministic per-rank training checkpoints.
//
// Elastic membership (ddp/membership.h) needs a rank's training state to
// survive the rank: when the failure detector evicts a rank whose node
// died, everything it held — parameters, optimizer momentum, error-feedback
// residual, PRNG cursor — is gone with it unless it was checkpointed. A
// Checkpoint captures exactly that state for one rank, serialized to a
// little-endian byte blob guarded by a trailing CRC32C (the same format
// discipline as FaultLog / TrimTranscript: two runs that should agree
// produce byte-identical blobs, and a truncated or bit-flipped blob fails
// loudly instead of loading garbage).
//
// Taking a checkpoint is pure reads — it never perturbs training
// bit-identity — and the blob is bit-identical across TRIMGRAD_THREADS
// because every field it captures already is.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace trimgrad::ddp {

struct Checkpoint {
  /// v2 appends the serialized compression-control-plane state (policy
  /// controller + last NetFeedback, core/policy.h). v1 blobs still load,
  /// with `policy_state` empty.
  static constexpr std::uint32_t kFormatVersion = 2;

  // --- where in the run this was taken ---------------------------------
  int rank = 0;
  std::uint64_t epoch = 0;
  std::uint64_t round = 0;         ///< global round index (epoch * batches + b)
  std::uint64_t view_version = 0;  ///< membership view at capture time

  // --- the rank's training state ---------------------------------------
  std::vector<float> params;                    ///< flat model parameters
  float lr = 0.0f;                              ///< optimizer current lr
  std::uint64_t opt_epoch = 0;                  ///< StepLR position
  std::vector<std::vector<float>> velocity;     ///< momentum, per buffer
  std::vector<float> residual;                  ///< error-feedback residual
  std::array<std::uint64_t, 4> augment_rng{};   ///< trainer PRNG cursor
  /// Serialized compression-policy state + last feedback snapshot (see
  /// DdpTrainer::policy_state_blob). Whole-trainer state like the RNG
  /// cursor: restored by a full restart, not a single-rank rejoin. Empty
  /// when loaded from a v1 blob.
  std::vector<std::uint8_t> policy_state;

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;

  /// Serialize to the CRC-guarded blob. Deterministic: equal checkpoints
  /// produce byte-identical blobs.
  std::vector<std::uint8_t> to_bytes() const;

  /// Parse + verify a blob. Throws std::runtime_error naming the failure
  /// (bad magic, unsupported version, truncation, CRC mismatch) — a
  /// damaged blob never loads as garbage state.
  static Checkpoint from_bytes(std::span<const std::uint8_t> blob);

  /// Stream wrappers over to_bytes/from_bytes (binary).
  void save(std::ostream& os) const;
  static Checkpoint load(std::istream& is);
};

}  // namespace trimgrad::ddp
