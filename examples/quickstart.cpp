// Quickstart: encode a gradient into trimmable packets, let a "switch" trim
// a configurable fraction of them, decode, and see how little accuracy was
// lost.
//
//   $ ./examples/quickstart                       # scheme=rht, trim=0.5
//   $ ./examples/quickstart "scheme=sq,trim=0.25"
//
// This is the 30-line tour of the public API: an ExperimentSpec picks the
// codec by name from the CodecRegistry; CodecConfig -> TrimmableEncoder
// -> GradientPacket::trim() -> TrimmableDecoder does the rest.
#include <cstdio>
#include <exception>
#include <vector>

#include "core/codec.h"
#include "core/codec_registry.h"
#include "core/prng.h"
#include "core/stats.h"
#include "ddp/experiment.h"

int main(int argc, char** argv) {
  using namespace trimgrad;

  ddp::ExperimentSpec spec;
  try {
    spec = ddp::ExperimentSpec::parse(argc > 1 ? argv[1] : "trim=0.5");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  // A synthetic 100k-coordinate "gradient".
  core::Xoshiro256 rng(42);
  std::vector<float> grad(100'000);
  for (auto& g : grad) g = 0.01f * static_cast<float>(rng.gaussian());

  // Look the named scheme up in the registry ("rht" is the paper's §3.2
  // trimmable encoding; try "sq" or "sign").
  core::CodecConfig cfg;
  cfg.scheme = core::CodecRegistry::global().at(spec.scheme).scheme;

  core::TrimmableEncoder encoder(cfg);
  core::EncodedMessage msg = encoder.encode(grad, /*msg_id=*/1, /*epoch=*/0);
  std::printf("scheme=%s: encoded %zu coords into %zu packets (%zu bytes on "
              "the wire)\n",
              spec.scheme.c_str(), grad.size(), msg.packets.size(),
              msg.total_wire_bytes());

  // A congested switch trims the spec'd fraction of packets to their
  // 88-byte trim point (evenly spaced, Bresenham-style).
  std::size_t trimmed = 0;
  for (std::size_t i = 0; i < msg.packets.size(); ++i) {
    const auto mark = [&](std::size_t k) {
      return static_cast<std::size_t>(static_cast<double>(k) * spec.trim);
    };
    if (mark(i + 1) > mark(i)) {
      msg.packets[i].trim();
      ++trimmed;
    }
  }
  std::printf("switch trimmed %zu/%zu packets -> %zu bytes on the wire\n",
              trimmed, msg.packets.size(), msg.total_wire_bytes());

  // The receiver decodes what survived — no retransmissions needed.
  core::TrimmableDecoder decoder(cfg);
  core::DecodeResult out = decoder.decode(msg.packets, msg.meta);
  std::printf("decoded: %zu full coords, %zu from 1-bit heads\n",
              out.stats.full_coords, out.stats.trimmed_coords);
  std::printf("NMSE vs original gradient: %.4f (0 = perfect)\n",
              core::nmse(out.values, grad));
  return 0;
}
