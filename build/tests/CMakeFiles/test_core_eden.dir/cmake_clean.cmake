file(REMOVE_RECURSE
  "CMakeFiles/test_core_eden.dir/core/eden_test.cpp.o"
  "CMakeFiles/test_core_eden.dir/core/eden_test.cpp.o.d"
  "test_core_eden"
  "test_core_eden.pdb"
  "test_core_eden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_eden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
