// TrimInjector + transcript replay: the paper's probabilistic evaluation
// mode (§4) and the reproducibility story (§5.4), end to end with the codec.
#include "net/injector.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/codec.h"
#include "core/stats.h"

namespace trimgrad::net {
namespace {

using core::CodecConfig;
using core::EncodedMessage;
using core::Scheme;
using core::TrimmableDecoder;
using core::TrimmableEncoder;

std::vector<float> gaussian_vec(std::size_t n, std::uint64_t seed) {
  core::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.gaussian());
  return v;
}

CodecConfig cfg_rht() {
  CodecConfig cfg;
  cfg.scheme = Scheme::kRHT;
  cfg.rht_row_len = 1 << 10;
  return cfg;
}

TEST(Injector, ZeroRatesAreNoOp) {
  TrimInjector inj({0.0, 0.0, 1});
  auto v = gaussian_vec(4000, 1);
  EncodedMessage msg = TrimmableEncoder(cfg_rht()).encode(v, 1, 1);
  const std::size_t before = msg.packets.size();
  const auto st = inj.apply(msg.packets, 1);
  EXPECT_EQ(st.trimmed, 0u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(msg.packets.size(), before);
}

TEST(Injector, TrimRateIsRespected) {
  TrimInjector inj({0.3, 0.0, 7});
  std::size_t trimmed = 0, total = 0;
  for (int round = 0; round < 50; ++round) {
    auto v = gaussian_vec(8192, round);
    EncodedMessage msg = TrimmableEncoder(cfg_rht()).encode(v, round, 1);
    const auto st = inj.apply(msg.packets, 1);
    trimmed += st.trimmed;
    total += st.packets;
  }
  EXPECT_NEAR(static_cast<double>(trimmed) / total, 0.3, 0.05);
}

TEST(Injector, DropRemovesPackets) {
  TrimInjector inj({0.0, 0.5, 9});
  auto v = gaussian_vec(16384, 2);
  EncodedMessage msg = TrimmableEncoder(cfg_rht()).encode(v, 1, 1);
  const std::size_t before = msg.packets.size();
  const auto st = inj.apply(msg.packets, 1);
  EXPECT_EQ(msg.packets.size(), before - st.dropped);
  EXPECT_GT(st.dropped, 0u);
}

TEST(Injector, TrimmedMessageStillDecodes) {
  TrimInjector inj({0.5, 0.0, 11});
  auto v = gaussian_vec(8192, 3);
  TrimmableEncoder enc(cfg_rht());
  TrimmableDecoder dec(cfg_rht());
  EncodedMessage msg = enc.encode(v, 5, 2);
  inj.apply(msg.packets, 2);
  const auto out = dec.decode(msg.packets, msg.meta);
  EXPECT_LT(core::nmse(out.values, v), 0.5);
}

TEST(Injector, RecordsTranscript) {
  TrimInjector inj({0.4, 0.1, 13});
  auto v = gaussian_vec(8192, 4);
  EncodedMessage msg = TrimmableEncoder(cfg_rht()).encode(v, 9, 3);
  core::TrimTranscript transcript;
  const auto st = inj.apply(msg.packets, 3, &transcript);
  EXPECT_EQ(transcript.size(), st.trimmed + st.dropped);
}

TEST(Injector, ReplayReproducesExactDecodedGradient) {
  // §5.4's promise: record a congested run, then replay the transcript on a
  // clean copy and get bit-identical decoded gradients.
  auto v = gaussian_vec(8192, 5);
  TrimmableEncoder enc(cfg_rht());
  TrimmableDecoder dec(cfg_rht());

  // Original congested run.
  TrimInjector inj({0.35, 0.05, 17});
  EncodedMessage run1 = enc.encode(v, 4, 8);
  core::TrimTranscript transcript;
  inj.apply(run1.packets, 8, &transcript);
  const auto out1 = dec.decode(run1.packets, run1.meta);

  // Replay on a freshly encoded copy (the replay run has no congestion).
  EncodedMessage run2 = enc.encode(v, 4, 8);
  const auto st = TrimInjector::replay(run2.packets, 8, transcript);
  const auto out2 = dec.decode(run2.packets, run2.meta);

  EXPECT_EQ(out1.values, out2.values);
  EXPECT_EQ(out1.stats.trimmed_coords, out2.stats.trimmed_coords);
  EXPECT_GT(st.trimmed + st.dropped, 0u);
}

TEST(Injector, ReplayWrongEpochIsAHardError) {
  auto v = gaussian_vec(2048, 6);
  TrimmableEncoder enc(cfg_rht());
  core::TrimTranscript transcript;
  TrimInjector inj({0.5, 0.0, 19});
  EncodedMessage run = enc.encode(v, 1, 1);
  inj.apply(run.packets, 1, &transcript);
  ASSERT_GT(transcript.size(), 0u);
  EXPECT_TRUE(transcript.contains_epoch(1));
  EXPECT_FALSE(transcript.contains_epoch(99));

  // Replaying against an epoch the transcript never saw used to be a
  // silent no-op — i.e. silently reproducing the wrong run. Now it throws.
  EncodedMessage other = enc.encode(v, 1, 1);
  EXPECT_THROW(TrimInjector::replay(other.packets, 99, transcript),
               std::invalid_argument);
}

TEST(Injector, ReplayEmptyTranscriptIsLegalNoOp) {
  // A recorded run can legitimately contain zero trims; replaying its
  // (empty) transcript must not throw and must change nothing.
  auto v = gaussian_vec(1024, 6);
  TrimmableEncoder enc(cfg_rht());
  core::TrimTranscript empty;
  EncodedMessage run = enc.encode(v, 1, 1);
  const std::size_t n = run.packets.size();
  const auto st = TrimInjector::replay(run.packets, 7, empty);
  EXPECT_EQ(st.trimmed, 0u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(run.packets.size(), n);
}

TEST(InjectorMultilevel, MixesTrimLevels) {
  core::MultilevelCodec codec({core::PacketLayout{}, 1 << 10, 1});
  auto v = gaussian_vec(8192, 7);
  auto msg = codec.encode(v, 1, 1);
  TrimInjector inj({0.6, 0.0, 23});
  const auto st = inj.apply_multilevel(msg.packets, 1, /*mid_fraction=*/0.5);
  EXPECT_GT(st.trimmed, 0u);
  std::size_t mids = 0, heads = 0;
  for (const auto& p : msg.packets) {
    mids += p.level == core::TrimLevel::kMid ? 1 : 0;
    heads += p.level == core::TrimLevel::kHead ? 1 : 0;
  }
  EXPECT_GT(mids, 0u);
  EXPECT_GT(heads, 0u);
  EXPECT_EQ(mids + heads, st.trimmed);
  // And the mixed message still decodes well.
  const auto dec = codec.decode(msg.packets, msg.meta);
  EXPECT_LT(core::nmse(dec, v), 0.5);
}

}  // namespace
}  // namespace trimgrad::net
