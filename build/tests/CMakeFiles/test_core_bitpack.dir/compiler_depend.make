# Empty compiler generated dependencies file for test_core_bitpack.
# This may be replaced when dependencies are built.
