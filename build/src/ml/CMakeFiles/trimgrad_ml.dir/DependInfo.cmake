
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/data.cpp" "src/ml/CMakeFiles/trimgrad_ml.dir/data.cpp.o" "gcc" "src/ml/CMakeFiles/trimgrad_ml.dir/data.cpp.o.d"
  "/root/repo/src/ml/layers.cpp" "src/ml/CMakeFiles/trimgrad_ml.dir/layers.cpp.o" "gcc" "src/ml/CMakeFiles/trimgrad_ml.dir/layers.cpp.o.d"
  "/root/repo/src/ml/loss.cpp" "src/ml/CMakeFiles/trimgrad_ml.dir/loss.cpp.o" "gcc" "src/ml/CMakeFiles/trimgrad_ml.dir/loss.cpp.o.d"
  "/root/repo/src/ml/model.cpp" "src/ml/CMakeFiles/trimgrad_ml.dir/model.cpp.o" "gcc" "src/ml/CMakeFiles/trimgrad_ml.dir/model.cpp.o.d"
  "/root/repo/src/ml/optim.cpp" "src/ml/CMakeFiles/trimgrad_ml.dir/optim.cpp.o" "gcc" "src/ml/CMakeFiles/trimgrad_ml.dir/optim.cpp.o.d"
  "/root/repo/src/ml/tensor.cpp" "src/ml/CMakeFiles/trimgrad_ml.dir/tensor.cpp.o" "gcc" "src/ml/CMakeFiles/trimgrad_ml.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/trimgrad_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
