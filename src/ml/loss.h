// Softmax cross-entropy (the paper's training loss) and accuracy metrics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/tensor.h"

namespace trimgrad::ml {

struct LossResult {
  double loss = 0.0;  ///< mean cross-entropy over the batch
  Tensor grad;        ///< d loss / d logits, [B, classes]
};

/// logits: [B, classes]; labels: B entries in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const std::uint32_t> labels);

/// Top-k accuracy of logits against labels (paper reports top-1 and top-5).
double top_k_accuracy(const Tensor& logits,
                      std::span<const std::uint32_t> labels, std::size_t k);

}  // namespace trimgrad::ml
