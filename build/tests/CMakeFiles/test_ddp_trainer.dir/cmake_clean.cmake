file(REMOVE_RECURSE
  "CMakeFiles/test_ddp_trainer.dir/ddp/trainer_test.cpp.o"
  "CMakeFiles/test_ddp_trainer.dir/ddp/trainer_test.cpp.o.d"
  "test_ddp_trainer"
  "test_ddp_trainer.pdb"
  "test_ddp_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddp_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
