file(REMOVE_RECURSE
  "CMakeFiles/test_ml_layers.dir/ml/layers_test.cpp.o"
  "CMakeFiles/test_ml_layers.dir/ml/layers_test.cpp.o.d"
  "test_ml_layers"
  "test_ml_layers.pdb"
  "test_ml_layers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
