// Trimmable packet wire format (paper §2).
//
// Payload layout: the P-bit heads of all n coordinates in the packet come
// first, then the Q-bit tails, so a switch can compress the packet by
// cutting everything after the first `header + ceil(P·n/8)` bytes. With
// P = 1, Q = 31 and a 1500-byte MTU this is the paper's "trim at 87 bytes"
// configuration (42-byte Ethernet/IP/UDP header + ≈45 bytes of sign bits),
// a 94.2 % size reduction.
//
// `GradientPacket` is the in-memory model of such a packet: explicit header
// fields plus separately held head/tail byte regions, with `trim()`
// implementing exactly what the switch does. The network simulator wraps
// these in frames and calls `trim()` on queue overflow.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace trimgrad::core {

/// Modeled Ethernet + IPv4 + UDP header size, as in the paper's arithmetic.
inline constexpr std::size_t kTransportHeaderBytes = 42;

/// Gradient-encoding scheme carried in the packet header.
enum class Scheme : std::uint8_t {
  kBaseline = 0,   ///< raw float32 coordinates, no head/tail split (Fig. 2a)
  kSign = 1,       ///< §3.1 sign-magnitude
  kSQ = 2,         ///< §3.1 stochastic quantization
  kSD = 3,         ///< §3.1 subtractive dithering
  kRHT = 4,        ///< §3.2 randomized-Hadamard-transform (DRIVE-style)
  kTopK = 5,       ///< §5.3 ahead-of-time top-k sparsify, then SD heads/tails
  kMagnitude = 6,  ///< §2 strawman: magnitude-ordered placement + SD
  kLowRank = 7,    ///< §5.2 PowerSGD factors, rank-ordered trimmable layout
};

/// Highest valid Scheme value — the wire parser's bound check.
inline constexpr std::uint8_t kMaxSchemeValue =
    static_cast<std::uint8_t>(Scheme::kLowRank);

const char* to_string(Scheme s) noexcept;
bool is_scalar(Scheme s) noexcept;  ///< kSign/kSQ/kSD

/// Static layout arithmetic for a (P, Q) split at a given MTU. All of §2's
/// in-text numbers fall out of these formulas (bench_sec2_layout prints
/// them next to the paper's).
struct PacketLayout {
  std::size_t mtu_bytes = 1500;
  std::size_t header_bytes = kTransportHeaderBytes;
  unsigned p_bits = 1;
  unsigned q_bits = 31;

  std::size_t payload_bytes() const noexcept { return mtu_bytes - header_bytes; }

  /// Max coordinates per packet: floor(payload_bits / (P+Q)).
  std::size_t coords_per_packet() const noexcept {
    return payload_bytes() * 8 / (p_bits + q_bits);
  }

  /// Head region size for n coordinates: ceil(P·n / 8).
  std::size_t head_region_bytes(std::size_t n) const noexcept {
    return (static_cast<std::size_t>(p_bits) * n + 7) / 8;
  }

  /// Tail region size for n coordinates: ceil(Q·n / 8).
  std::size_t tail_region_bytes(std::size_t n) const noexcept {
    return (static_cast<std::size_t>(q_bits) * n + 7) / 8;
  }

  /// The switch trim point: header + full head region for a full packet.
  std::size_t trim_point_bytes() const noexcept {
    return header_bytes + head_region_bytes(coords_per_packet());
  }

  /// Wire size of a full (untrimmed) packet with n coordinates.
  std::size_t full_packet_bytes(std::size_t n) const noexcept {
    return header_bytes + head_region_bytes(n) + tail_region_bytes(n);
  }

  /// Fraction of the full packet removed by trimming: 1 − trimmed/full.
  double trim_ratio() const noexcept;
};

/// One trimmable gradient packet.
struct GradientPacket {
  // ---- modeled header fields (ride inside the 42-byte header budget) ----
  std::uint32_t msg_id = 0;      ///< collective message id
  std::uint32_t row_id = 0;      ///< RHT row index (0 for scalar schemes)
  std::uint32_t coord_base = 0;  ///< index of the first coordinate carried
  std::uint16_t n_coords = 0;    ///< number of coordinates carried
  std::uint16_t seq = 0;         ///< packet sequence number within message
  Scheme scheme = Scheme::kBaseline;
  std::uint8_t p_bits = 1;
  std::uint8_t q_bits = 31;
  bool trimmed = false;  ///< set by the switch (or injector) on trim

  // ---- payload regions ----
  std::vector<std::uint8_t> head_region;  ///< ceil(P·n/8) bytes
  std::vector<std::uint8_t> tail_region;  ///< ceil(Q·n/8) bytes; empty if trimmed

  /// Simulated wire size in bytes (header + surviving payload).
  std::size_t wire_bytes() const noexcept {
    return kTransportHeaderBytes + head_region.size() + tail_region.size();
  }

  /// What the switch does under congestion: drop the tail region and mark
  /// the packet. Idempotent. For kBaseline there is no head/tail split —
  /// trimming discards the whole payload (Fig. 2a keeps only however many
  /// whole floats fit before the trim point; we model the trim point at the
  /// header so a trimmed baseline packet loses all of its coordinates,
  /// matching the reliable-transport baseline that must retransmit).
  void trim() noexcept {
    trimmed = true;
    tail_region.clear();
    tail_region.shrink_to_fit();
    if (scheme == Scheme::kBaseline) {
      head_region.clear();
      head_region.shrink_to_fit();
    }
  }

  /// Size this packet would have after trimming (the switch's trim point).
  std::size_t trimmed_wire_bytes() const noexcept {
    return kTransportHeaderBytes +
           (scheme == Scheme::kBaseline ? 0 : head_region.size());
  }
};

}  // namespace trimgrad::core
