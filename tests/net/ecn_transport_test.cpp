// DCTCP-style ECN transport + the §5.3 loop: ECN feedback driving
// ahead-of-time Q adaptation while trimming covers the residual.
#include "net/ecn_transport.h"

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "net/topology.h"
#include "net/traffic.h"

namespace trimgrad::net {
namespace {

struct Bench {
  Simulator sim;
  Dumbbell topo;

  explicit Bench(QueuePolicy policy, std::size_t queue_kb = 60,
                 std::size_t ecn_kb = 15) {
    FabricConfig cfg;
    cfg.edge_link = {100e9, 1e-6};
    cfg.core_link = {10e9, 1e-6};
    cfg.switch_queue.policy = policy;
    cfg.switch_queue.capacity_bytes = queue_kb * 1024;
    cfg.switch_queue.ecn_threshold_bytes = ecn_kb * 1024;
    cfg.switch_queue.header_capacity_bytes = 64 * 1024;
    topo = build_dumbbell(sim, 4, 2, cfg);
  }
};

TEST(EcnTransport, SingleFlowCompletesCleanly) {
  Bench b(QueuePolicy::kEcn);
  EcnFlow flow(b.sim, b.topo.left_hosts[0], b.topo.right_hosts[0], 1,
               EcnConfig{}, 64);
  flow.start_at(0.0, make_bulk_items(64, 1500, 0));
  b.sim.run();
  EXPECT_TRUE(flow.done());
  EXPECT_EQ(flow.stats().acked_full, 64u);
  EXPECT_EQ(flow.stats().retransmits, 0u);
}

TEST(EcnTransport, AlphaRisesUnderCongestion) {
  // 4-to-1 incast above the marking threshold: alpha must move off zero.
  Bench b(QueuePolicy::kEcn);
  std::vector<std::unique_ptr<EcnFlow>> flows;
  std::uint32_t id = 1;
  for (NodeId src : b.topo.left_hosts) {
    auto f = std::make_unique<EcnFlow>(b.sim, src, b.topo.right_hosts[0],
                                       id++, EcnConfig{}, 256);
    f->start_at(0.0, make_bulk_items(256, 1500, 0));
    flows.push_back(std::move(f));
  }
  b.sim.run();
  double max_alpha = 0;
  for (const auto& f : flows) {
    EXPECT_TRUE(f->done());
    max_alpha = std::max(max_alpha, f->sender().alpha());
  }
  EXPECT_GT(max_alpha, 0.05);
}

TEST(EcnTransport, WindowBacksOffUnderMarksAndRecovers) {
  Bench b(QueuePolicy::kEcn);
  EcnConfig cfg;
  cfg.initial_window = 64;
  // Heavy self-congestion: a window far above the 12.3 KB BDP against a
  // 15 KB marking threshold.
  std::vector<std::unique_ptr<EcnFlow>> flows;
  std::uint32_t id = 1;
  for (NodeId src : b.topo.left_hosts) {
    auto f = std::make_unique<EcnFlow>(b.sim, src, b.topo.right_hosts[0],
                                       id++, cfg, 512);
    f->start_at(0.0, make_bulk_items(512, 1500, 0));
    flows.push_back(std::move(f));
  }
  b.sim.run();
  for (const auto& f : flows) {
    EXPECT_TRUE(f->done());
    EXPECT_LT(f->sender().window(), 64u)
        << "window should have backed off from the initial burst";
  }
}

TEST(EcnTransport, LowerMarkingThresholdKeepsQueuesShorter) {
  // The initial bursts overflow either way (high-water mark is capacity);
  // DCTCP's effect is on *steady-state* occupancy, so compare the mean.
  auto run = [](std::size_t ecn_kb) {
    Bench b(QueuePolicy::kEcn, 60, ecn_kb);
    std::vector<std::unique_ptr<EcnFlow>> flows;
    std::uint32_t id = 1;
    for (NodeId src : b.topo.left_hosts) {
      auto f = std::make_unique<EcnFlow>(b.sim, src, b.topo.right_hosts[0],
                                         id++, EcnConfig{}, 256);
      f->start_at(0.0, make_bulk_items(256, 1500, 0));
      flows.push_back(std::move(f));
    }
    b.sim.run();
    double worst_mean = 0;
    for (NodeId sw : {b.topo.left_switch, b.topo.right_switch}) {
      auto& node = b.sim.node(sw);
      for (std::size_t p = 0; p < node.port_count(); ++p) {
        worst_mean =
            std::max(worst_mean, node.port(p).queue().occupancy().mean());
      }
    }
    return worst_mean;
  };
  EXPECT_LT(run(8), run(48));
}

TEST(EcnTransport, TrimmedDeliveryCountsOnTrimmingFabric) {
  // ECN sender over a trimming fabric: marks are absent (kTrim does not
  // mark) but trimmed arrivals are accepted like the trim-aware transport.
  Bench b(QueuePolicy::kTrim, 15);
  std::vector<std::unique_ptr<EcnFlow>> flows;
  std::uint32_t id = 1;
  for (NodeId src : b.topo.left_hosts) {
    EcnConfig cfg;
    cfg.initial_window = 64;
    auto f = std::make_unique<EcnFlow>(b.sim, src, b.topo.right_hosts[0],
                                       id++, cfg, 128);
    f->start_at(0.0, make_bulk_items(128, 1500, 88));
    flows.push_back(std::move(f));
  }
  b.sim.run();
  std::uint64_t trimmed = 0;
  for (const auto& f : flows) {
    EXPECT_TRUE(f->done());
    trimmed += f->stats().acked_trimmed;
    EXPECT_EQ(f->stats().retransmits, 0u);
  }
  EXPECT_GT(trimmed, 0u);
}

TEST(EcnTransport, AlphaDrivesAdaptiveQ) {
  // The §5.3 composition: run a congested transfer, feed the measured
  // DCTCP alpha into the Q controller, and verify the sender would lower
  // its ahead-of-time precision — then a quiet transfer recovers it.
  core::AdaptiveQController ctl;
  auto alpha_of = [](std::size_t senders, std::size_t window) {
    Bench b(QueuePolicy::kEcn);
    EcnConfig cfg;
    cfg.initial_window = window;
    cfg.max_window = window;  // pin: we are probing the fabric, not DCTCP
    std::vector<std::unique_ptr<EcnFlow>> flows;
    std::uint32_t id = 1;
    for (std::size_t i = 0; i < senders; ++i) {
      auto f = std::make_unique<EcnFlow>(b.sim, b.topo.left_hosts[i],
                                         b.topo.right_hosts[0], id++, cfg,
                                         256);
      f->start_at(0.0, make_bulk_items(256, 1500, 0));
      flows.push_back(std::move(f));
    }
    b.sim.run();
    double worst = 0;
    for (const auto& f : flows) worst = std::max(worst, f->sender().alpha());
    return worst;
  };
  const double congested = alpha_of(4, 16);  // incast above the threshold
  ctl.observe(congested);
  EXPECT_LT(ctl.q(), 31u) << "congestion should reduce ahead-of-time Q";
  const unsigned reduced = ctl.q();
  const double quiet = alpha_of(1, 4);  // one flow below the threshold
  EXPECT_LT(quiet, 0.05);
  for (int i = 0; i < 20; ++i) ctl.observe(quiet);
  EXPECT_GT(ctl.q(), reduced) << "quiet network should restore precision";
}

}  // namespace
}  // namespace trimgrad::net
