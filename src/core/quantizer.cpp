#include "core/quantizer.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/bitpack.h"
#include "core/simd.h"
#include "core/stats.h"

namespace trimgrad::core {

namespace {

constexpr std::uint32_t kSignMask = 0x80000000u;
constexpr std::uint32_t kMagMask = 0x7fffffffu;

/// SQ/SD tail: sign(1) | exponent(8) | mantissa[22..1](22) — 31 bits.
/// Drops the mantissa LSB so the stochastic head bit costs no extra space.
constexpr std::uint32_t pack_signed_tail(float v) noexcept {
  const std::uint32_t b = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t sign = b >> 31;
  const std::uint32_t exp_man = (b & kMagMask) >> 1;  // drop mantissa LSB
  return (sign << 30) | exp_man;
}

constexpr float unpack_signed_tail(std::uint32_t tail) noexcept {
  const std::uint32_t sign = (tail >> 30) & 1u;
  const std::uint32_t exp_man = (tail & 0x3fffffffu) << 1;  // LSB := 0
  return std::bit_cast<float>((sign << 31) | exp_man);
}

constexpr float clip(float v, float l) noexcept {
  return std::clamp(v, -l, l);
}

}  // namespace

const char* to_string(ScalarScheme s) noexcept {
  switch (s) {
    case ScalarScheme::kSign: return "sign";
    case ScalarScheme::kSQ: return "sq";
    case ScalarScheme::kSD: return "sd";
  }
  return "?";
}

float scalar_scale(ScalarScheme scheme, std::span<const float> values) noexcept {
  const float sigma = static_cast<float>(stddev(values));
  return scheme == ScalarScheme::kSign ? sigma : kClipSigmas * sigma;
}

std::vector<float> make_dithers(std::size_t n, float scale_l, SharedRng rng) {
  std::vector<float> out(n);
  // Full-step dither for the ±L two-level quantizer (step 2L): U(−L, L).
  for (auto& d : out) d = rng.uniform(-scale_l, scale_l);
  return out;
}

HeadTail scalar_encode(ScalarScheme scheme, float v, float scale,
                       Xoshiro256& private_rng, float dither) noexcept {
  switch (scheme) {
    case ScalarScheme::kSign:
      // Head = sign bit (1 for non-negative); tail = exponent+mantissa.
      return {(float_bits(v) & kSignMask) == 0, float_bits(v) & kMagMask};
    case ScalarScheme::kSQ: {
      const float l = scale;
      const float c = l > 0.0f ? clip(v, l) : 0.0f;
      const double p_plus = l > 0.0f ? (l + c) / (2.0 * l) : 0.5;
      return {private_rng.bernoulli(p_plus), pack_signed_tail(v)};
    }
    case ScalarScheme::kSD:
      return {v + dither >= 0.0f, pack_signed_tail(v)};
  }
  return {false, 0};
}

float scalar_decode_full(ScalarScheme scheme, bool head, std::uint32_t tail) noexcept {
  switch (scheme) {
    case ScalarScheme::kSign:
      return bits_float((head ? 0u : kSignMask) | (tail & kMagMask));
    case ScalarScheme::kSQ:
    case ScalarScheme::kSD:
      return unpack_signed_tail(tail);
  }
  return 0.0f;
}

float scalar_decode_trimmed(ScalarScheme scheme, bool head, float scale,
                            float dither) noexcept {
  const float s = head ? 1.0f : -1.0f;
  switch (scheme) {
    case ScalarScheme::kSign:
    case ScalarScheme::kSQ:
      return s * scale;  // {−σ,+σ} or {−L,+L}
    case ScalarScheme::kSD:
      return s * scale - dither;  // x̃ = Q(x) − ε
  }
  return 0.0f;
}

void scalar_encode_all(ScalarScheme scheme, std::span<const float> values,
                       float scale, Xoshiro256& private_rng,
                       std::span<const float> dithers,
                       std::vector<std::uint8_t>& heads,
                       std::vector<std::uint32_t>& tails) {
  assert(scheme != ScalarScheme::kSD || dithers.size() >= values.size());
  const std::size_t at = heads.size();
  heads.resize(at + values.size());
  tails.resize(tails.size() + values.size());
  switch (scheme) {
    case ScalarScheme::kSign:
      // Pure bit split — lane-parallel, vectorized (bit-identical; simd.h).
      simd::split_sign_mag(values.data(), values.size(), heads.data() + at,
                           tails.data() + at);
      break;
    case ScalarScheme::kSD:
      simd::encode_sd(values.data(), dithers.data(), values.size(),
                      heads.data() + at, tails.data() + at);
      break;
    case ScalarScheme::kSQ:
      // SQ's head consumes one private_rng draw per coordinate in index
      // order — inherently sequential, deliberately scalar.
      for (std::size_t i = 0; i < values.size(); ++i) {
        const HeadTail ht =
            scalar_encode(scheme, values[i], scale, private_rng, 0.0f);
        heads[at + i] = ht.head ? 1 : 0;
        tails[at + i] = ht.tail;
      }
      break;
  }
}

}  // namespace trimgrad::core
