file(REMOVE_RECURSE
  "CMakeFiles/trimgrad_ddp.dir/clock_model.cpp.o"
  "CMakeFiles/trimgrad_ddp.dir/clock_model.cpp.o.d"
  "CMakeFiles/trimgrad_ddp.dir/trainer.cpp.o"
  "CMakeFiles/trimgrad_ddp.dir/trainer.cpp.o.d"
  "libtrimgrad_ddp.a"
  "libtrimgrad_ddp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trimgrad_ddp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
