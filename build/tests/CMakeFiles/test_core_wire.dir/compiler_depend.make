# Empty compiler generated dependencies file for test_core_wire.
# This may be replaced when dependencies are built.
