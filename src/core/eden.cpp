#include "core/eden.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>

#include "core/hadamard.h"
#include "core/metrics.h"
#include "core/simd.h"
#include "core/stats.h"
#include "core/threadpool.h"
#include "core/trace.h"

namespace trimgrad::core {

namespace {

struct EdenTelemetry {
  Counter messages_encoded, messages_decoded, rows_encoded;

  static const EdenTelemetry& get() {
    auto& reg = MetricsRegistry::global();
    static const EdenTelemetry t{
        reg.counter("codec.eden.messages_encoded"),
        reg.counter("codec.eden.messages_decoded"),
        reg.counter("codec.eden.rows_encoded"),
    };
    return t;
  }
};

double phi(double x) {  // standard normal pdf
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979323846);
}

double Phi(double x) {  // standard normal cdf
  return 0.5 * (1.0 + std::erf(x / std::sqrt(2.0)));
}

/// Conditional mean of N(0,1) on [a, b).
double cell_mean(double a, double b) {
  const double mass = Phi(b) - Phi(a);
  if (mass <= 1e-300) return (a + b) / 2.0;
  return (phi(a) - phi(b)) / mass;
}

}  // namespace

GaussianCodebook make_codebook(unsigned bits) {
  assert(bits >= 1 && bits <= 8);
  const std::size_t levels = std::size_t{1} << bits;
  GaussianCodebook cb;
  cb.bits = bits;
  cb.centroids.resize(levels);
  cb.boundaries.resize(levels - 1);

  // Initialize centroids at gaussian quantiles, then Lloyd-iterate with
  // exact gaussian cell statistics.
  std::vector<double> c(levels), b(levels + 1);
  for (std::size_t i = 0; i < levels; ++i) {
    const double p = (i + 0.5) / static_cast<double>(levels);
    // Crude quantile via bisection (only runs once per bit width).
    double lo = -10, hi = 10;
    for (int it = 0; it < 80; ++it) {
      const double mid = 0.5 * (lo + hi);
      (Phi(mid) < p ? lo : hi) = mid;
    }
    c[i] = 0.5 * (lo + hi);
  }
  for (int iter = 0; iter < 300; ++iter) {
    b[0] = -40.0;
    b[levels] = 40.0;
    for (std::size_t i = 1; i < levels; ++i) b[i] = 0.5 * (c[i - 1] + c[i]);
    for (std::size_t i = 0; i < levels; ++i) c[i] = cell_mean(b[i], b[i + 1]);
  }
  for (std::size_t i = 0; i < levels; ++i)
    cb.centroids[i] = static_cast<float>(c[i]);
  for (std::size_t i = 1; i < levels; ++i)
    cb.boundaries[i - 1] = static_cast<float>(b[i]);

  double kept = 0.0;
  for (std::size_t i = 0; i < levels; ++i) {
    kept += c[i] * c[i] * (Phi(b[i + 1]) - Phi(b[i]));
  }
  cb.distortion_ = 1.0 - kept;  // E[(X−Q(X))²] with optimal centroids
  return cb;
}

std::uint32_t GaussianCodebook::quantize(float x) const noexcept {
  const auto it = std::upper_bound(boundaries.begin(), boundaries.end(), x);
  return static_cast<std::uint32_t>(it - boundaries.begin());
}

const GaussianCodebook& GaussianCodebook::get(unsigned bits) {
  static std::mutex mu;
  static std::map<unsigned, GaussianCodebook> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(bits);
  if (it == cache.end()) {
    it = cache.emplace(bits, make_codebook(bits)).first;
  }
  return it->second;
}

namespace {

/// In-place core of eden_encode_row: rotates `row` (clobbering it) and
/// overwrites `out`, reusing its capacity. Bit-identical to the copying
/// entry point.
void eden_encode_row_inplace(std::span<float> row, const StreamKey& key,
                             unsigned bits, EdenEncodedRow& out) {
  assert(is_pow2(row.size()));
  const GaussianCodebook& cb = GaussianCodebook::get(bits);

  SharedRng rng(key);
  rht_inplace(row, rng);

  const double rms =
      std::sqrt(l2_norm_sq(row) / static_cast<double>(row.size()));
  out.bits = bits;
  out.codes.resize(row.size());
  if (rms > 0.0) {
    // Lane-parallel codebook search: same double-precision normalization
    // and boundary compares as the scalar quantize (see simd.h).
    simd::eden_quantize(row.data(), row.size(), rms, cb.boundaries.data(),
                        cb.boundaries.size(), out.codes.data());
  } else {
    std::fill(out.codes.begin(), out.codes.end(), cb.quantize(0.0f));
  }
  // ⟨R, C⟩ with C at unit-normal scale. Scalar double accumulation:
  // order-sensitive rounding, deliberately not vectorized.
  double dot = 0.0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    dot += static_cast<double>(row[i]) * cb.centroids[out.codes[i]];
  }
  // Unbiased scale (DRIVE's f generalized): r̂ = f·C, f = ‖R‖²/⟨R,C⟩.
  out.scale = dot > 0.0 ? static_cast<float>(l2_norm_sq(row) / dot) : 0.0f;
  EdenTelemetry::get().rows_encoded.add();
}

}  // namespace

EdenEncodedRow eden_encode_row(std::span<const float> row,
                               const StreamKey& key, unsigned bits) {
  std::vector<float> rotated(row.begin(), row.end());
  EdenEncodedRow out;
  eden_encode_row_inplace(rotated, key, bits, out);
  return out;
}

std::vector<float> eden_decode_row(const EdenEncodedRow& enc,
                                   std::size_t n, const StreamKey& key) {
  assert(enc.codes.size() == n);
  assert(is_pow2(n));
  const GaussianCodebook& cb = GaussianCodebook::get(enc.bits);
  std::vector<float> r_hat(n);
  for (std::size_t i = 0; i < n; ++i) {
    r_hat[i] = enc.scale * cb.centroids[enc.codes[i]];
  }
  SharedRng rng(key);
  irht_inplace(r_hat, rng);
  return r_hat;
}

EdenEncodedMessage eden_encode_message(std::span<const float> grad,
                                       std::uint64_t seed, std::uint64_t epoch,
                                       std::uint32_t msg_id, unsigned bits,
                                       std::size_t row_len) {
  TraceLog::Span trace_span = TraceLog::global().span("eden.encode", "codec");
  trace_span.arg("coords", static_cast<double>(grad.size()));
  EdenTelemetry::get().messages_encoded.add();
  // Warm the codebook cache before fanning out so workers only take the
  // cache mutex on a hit.
  (void)GaussianCodebook::get(bits);
  const RowSplit split = make_row_split(grad.size(), row_len);
  EdenEncodedMessage out;
  out.total_coords = grad.size();
  out.row_len = row_len;
  out.rows.resize(split.n_rows);
  parallel_for(split.n_rows, 1, [&](std::size_t r0, std::size_t r1) {
    std::vector<float> row;  // per-chunk scratch, reused across rows
    for (std::size_t r = r0; r < r1; ++r) {
      extract_padded_row_into(grad, split, r, row);
      eden_encode_row_inplace(row, StreamKey{seed, epoch, msg_id, r}, bits,
                              out.rows[r]);
    }
  });
  return out;
}

std::vector<float> eden_decode_message(const EdenEncodedMessage& msg,
                                       std::uint64_t seed, std::uint64_t epoch,
                                       std::uint32_t msg_id) {
  TraceLog::Span trace_span = TraceLog::global().span("eden.decode", "codec");
  trace_span.arg("coords", static_cast<double>(msg.total_coords));
  EdenTelemetry::get().messages_decoded.add();
  const RowSplit split = make_row_split(msg.total_coords, msg.row_len);
  assert(msg.rows.size() == split.n_rows);
  std::vector<float> out(msg.total_coords, 0.0f);
  parallel_for(split.n_rows, 1, [&](std::size_t r0, std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const std::vector<float> row = eden_decode_row(
          msg.rows[r], split.padded_len(r), StreamKey{seed, epoch, msg_id, r});
      const std::size_t real = split.real_len(r);
      std::copy(row.begin(), row.begin() + real,
                out.begin() + split.offset(r));
    }
  });
  return out;
}

}  // namespace trimgrad::core
