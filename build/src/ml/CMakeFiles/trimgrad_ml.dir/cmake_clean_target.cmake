file(REMOVE_RECURSE
  "libtrimgrad_ml.a"
)
