file(REMOVE_RECURSE
  "CMakeFiles/test_core_bitpack.dir/core/bitpack_test.cpp.o"
  "CMakeFiles/test_core_bitpack.dir/core/bitpack_test.cpp.o.d"
  "test_core_bitpack"
  "test_core_bitpack.pdb"
  "test_core_bitpack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bitpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
