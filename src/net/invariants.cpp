#include "net/invariants.h"

#include <algorithm>
#include <cstdio>

#include "net/fault_plane.h"
#include "net/sim.h"

namespace trimgrad::net {

namespace {

/// The frame dispatch currently executing on this thread. Deliveries never
/// nest (a node's on_frame runs to completion inside one event, and each
/// domain is owned by exactly one worker inside a parallel window), so a
/// single slot per thread suffices; the owner pointer keeps concurrently
/// live monitors from seeing each other's dispatches.
struct PendingDelivery {
  const InvariantMonitor* owner = nullptr;
  NodeId node = kInvalidNode;
  std::uint32_t flow_id = 0;
  std::uint64_t frame_id = 0;
  SimTime time = 0;
  bool is_data = false;
  bool resolved = false;
};

thread_local PendingDelivery g_pending;

std::string format_sim_time(SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

}  // namespace

const char* to_string(InvariantMonitor::Outcome o) noexcept {
  switch (o) {
    case InvariantMonitor::Outcome::kDelivered: return "delivered";
    case InvariantMonitor::Outcome::kForwarded: return "forwarded";
    case InvariantMonitor::Outcome::kDuplicate: return "duplicate";
    case InvariantMonitor::Outcome::kCorruptNacked: return "corrupt_nacked";
    case InvariantMonitor::Outcome::kTrimRejected: return "trim_rejected";
    case InvariantMonitor::Outcome::kMalformed: return "malformed";
    case InvariantMonitor::Outcome::kUnroutable: return "unroutable";
    case InvariantMonitor::Outcome::kUnclaimed: return "unclaimed";
  }
  return "?";
}

InvariantMonitor::InvariantMonitor(Config cfg) : cfg_(cfg) {}

InvariantMonitor::~InvariantMonitor() {
  if (sim_ != nullptr && sim_->invariant_monitor() == this) {
    sim_->set_invariant_monitor(nullptr);
  }
}

void InvariantMonitor::attach(Simulator& sim) {
  sim_ = &sim;
  sim.set_invariant_monitor(this);
}

std::string InvariantMonitor::render_active_faults(SimTime now) const {
  if (sim_ == nullptr || sim_->fault_plane() == nullptr) return {};
  const FaultPlaneConfig& cfg = sim_->fault_plane()->config();
  std::string out;
  const auto append = [&out](const std::string& s) {
    if (!out.empty()) out += ' ';
    out += s;
  };
  for (const LinkFault& f : cfg.link_faults) {
    if (!f.active_at(now)) continue;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "link(%u,%zu,bw=%g)",
                  static_cast<unsigned>(f.node), f.port, f.bandwidth_scale);
    append(buf);
  }
  for (const NodeFault& f : cfg.node_faults) {
    if (!f.active_at(now)) continue;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "node(%u)", static_cast<unsigned>(f.node));
    append(buf);
  }
  if (cfg.corrupt_rate > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "corrupt(%g)", cfg.corrupt_rate);
    append(buf);
  }
  for (const CorruptRule& r : cfg.corrupt_overrides) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "corrupt(%u,%zu,%g)",
                  static_cast<unsigned>(r.node), r.port, r.rate);
    append(buf);
  }
  return out;
}

void InvariantMonitor::report(InvariantViolation v) {
  // Caller holds mu_.
  ++total_violations_;
  if (violations_.size() >= cfg_.max_violations) return;
  v.active_faults = render_active_faults(v.time);
  violations_.push_back(std::move(v));
}

// --- Simulator hooks --------------------------------------------------------

void InvariantMonitor::on_frame_id(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (!seen_frame_ids_.insert(id).second) {
    report({"frame_id_unique", sim_ != nullptr ? sim_->now() : 0.0,
            kInvalidNode, 0, id,
            "frame id handed out twice across scheduling domains", {}});
  }
}

void InvariantMonitor::on_transmit(NodeId from, std::uint64_t frame_id,
                                   FrameKind kind, bool accepted, SimTime now) {
  (void)kind;
  if (g_pending.owner == this && g_pending.frame_id == frame_id) {
    // A switch forwarding the frame it is currently being handed: whether
    // the egress queue accepted it or dropped/refused it, its delivery is
    // accounted for.
    g_pending.resolved = true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (accepted) ++custody_[frame_id];
  (void)from;
  (void)now;
}

void InvariantMonitor::on_queue_flushed(NodeId node, std::uint64_t frame_id,
                                        SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const auto it = custody_.find(frame_id);
  if (it == custody_.end() || it->second <= 0) {
    report({"frame_conservation", now, node, 0, frame_id,
            "queue flushed a frame that was not in custody", {}});
    return;
  }
  if (--it->second == 0) custody_.erase(it);
}

void InvariantMonitor::on_arrival_drop(NodeId node, std::uint64_t frame_id,
                                       SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const auto it = custody_.find(frame_id);
  if (it == custody_.end() || it->second <= 0) {
    report({"frame_conservation", now, node, 0, frame_id,
            "dead-node drop of a frame that was not in custody", {}});
    return;
  }
  if (--it->second == 0) custody_.erase(it);
}

void InvariantMonitor::begin_delivery(NodeId node, const Frame& frame,
                                      SimTime now) {
  g_pending = PendingDelivery{this,      node, frame.flow_id, frame.id, now,
                              frame.kind == FrameKind::kData, false};
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const auto it = custody_.find(frame.id);
  if (it == custody_.end() || it->second <= 0) {
    report({"frame_conservation", now, node, frame.flow_id, frame.id,
            "frame delivered more than once (custody went negative)", {}});
    return;
  }
  if (--it->second == 0) custody_.erase(it);
}

void InvariantMonitor::resolve_delivery(Outcome outcome) {
  (void)outcome;
  if (g_pending.owner != this) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (g_pending.resolved) {
    report({"delivery_accounting", g_pending.time, g_pending.node,
            g_pending.flow_id, g_pending.frame_id,
            std::string("frame resolved twice (second outcome: ") +
                to_string(outcome) + ")",
            {}});
    return;
  }
  g_pending.resolved = true;
}

void InvariantMonitor::end_delivery() {
  if (g_pending.owner != this) return;
  const PendingDelivery p = g_pending;
  g_pending = PendingDelivery{};
  if (!p.is_data || p.resolved) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  report({"frame_conservation", p.time, p.node, p.flow_id, p.frame_id,
          "data frame consumed without an outcome (delivered, NACKed, "
          "forwarded, or dropped) — a recovery path swallowed it",
          {}});
}

// --- Flow hooks -------------------------------------------------------------

void InvariantMonitor::on_flow_begin(const void* core, std::uint32_t flow_id,
                                     SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  live_flows_[core] = FlowRecord{flow_id, now, false};
}

void InvariantMonitor::on_flow_progress(const void* core,
                                        std::uint32_t flow_id, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const auto it = live_flows_.find(core);
  if (it == live_flows_.end()) return;
  FlowRecord& rec = it->second;
  if (!rec.stuck_reported && cfg_.flow_progress_deadline > 0 &&
      now - rec.last_progress > cfg_.flow_progress_deadline) {
    rec.stuck_reported = true;
    report({"stuck_flow", now, kInvalidNode, flow_id, 0,
            "flow made no forward progress for " +
                format_sim_time(now - rec.last_progress) + "s (deadline " +
                format_sim_time(cfg_.flow_progress_deadline) + "s)",
            {}});
  }
  rec.last_progress = now;
}

void InvariantMonitor::on_flow_complete(const void* core,
                                        std::uint32_t flow_id, bool failed,
                                        SimTime now) {
  (void)failed;
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const auto it = live_flows_.find(core);
  if (it == live_flows_.end()) {
    report({"on_complete_once", now, kInvalidNode, flow_id, 0,
            "flow terminal state reported without a live flow "
            "(on_complete fired twice, or complete without begin)",
            {}});
    return;
  }
  if (!it->second.stuck_reported && cfg_.flow_progress_deadline > 0 &&
      now - it->second.last_progress > cfg_.flow_progress_deadline) {
    report({"stuck_flow", now, kInvalidNode, flow_id, 0,
            "flow sat " + format_sim_time(now - it->second.last_progress) +
                "s without progress before terminating",
            {}});
  }
  live_flows_.erase(it);
}

// --- Control-plane hooks ----------------------------------------------------

void InvariantMonitor::on_view_version(std::uint64_t version, SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (view_seen_ && version < last_view_version_) {
    report({"view_monotonic", now, kInvalidNode, 0, 0,
            "membership view version went backwards: " +
                std::to_string(last_view_version_) + " -> " +
                std::to_string(version),
            {}});
  }
  last_view_version_ = std::max(last_view_version_, version);
  view_seen_ = true;
}

void InvariantMonitor::on_checkpoint_custody(int rank, bool crc_ok,
                                             SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (!crc_ok) {
    report({"checkpoint_custody", now, kInvalidNode, 0, 0,
            "rank " + std::to_string(rank) +
                " checkpoint blob failed its CRC round-trip",
            {}});
  }
}

void InvariantMonitor::on_epoch_time(std::uint64_t epoch, double sim_time_s) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  if (epoch_seen_ && sim_time_s <= last_epoch_time_) {
    report({"epoch_clock", sim_time_s, kInvalidNode, 0, 0,
            "epoch " + std::to_string(epoch) +
                " did not advance the simulated clock (" +
                format_sim_time(last_epoch_time_) + " -> " +
                format_sim_time(sim_time_s) + ")",
            {}});
  }
  last_epoch_time_ = std::max(last_epoch_time_, sim_time_s);
  epoch_seen_ = true;
}

// --- Finalize ---------------------------------------------------------------

void InvariantMonitor::finalize() {
  std::lock_guard<std::mutex> lock(mu_);
  ++checks_;
  const SimTime now = sim_ != nullptr ? sim_->now() : 0.0;
  if (sim_ != nullptr) {
    for (NodeId id = 0; id < sim_->node_count(); ++id) {
      Node& n = sim_->node(id);
      for (std::size_t p = 0; p < n.port_count(); ++p) {
        const EgressQueue& q = n.port(p).queue();
        if (q.empty()) continue;
        report({"queues_drained", now, id, 0, 0,
                "egress queue " + std::to_string(p) + " holds " +
                    std::to_string(q.data_bytes() + q.header_bytes()) +
                    " bytes after the run drained",
                {}});
      }
    }
  }
  for (const auto& [id, count] : custody_) {
    if (count <= 0) continue;
    report({"frame_conservation", now, kInvalidNode, 0, id,
            "frame still in custody at sim end (stuck in a queue or "
            "never dispatched)",
            {}});
  }
  for (const auto& [core, rec] : live_flows_) {
    (void)core;
    report({"stuck_flow", now, kInvalidNode, rec.flow_id, 0,
            "flow never reached a terminal state (last progress at " +
                format_sim_time(rec.last_progress) + "s)",
            {}});
  }
}

// --- Observers --------------------------------------------------------------

std::vector<InvariantViolation> InvariantMonitor::violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

std::vector<InvariantViolation> InvariantMonitor::sorted_violations() const {
  std::vector<InvariantViolation> out = violations();
  std::sort(out.begin(), out.end(),
            [](const InvariantViolation& a, const InvariantViolation& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.node != b.node) return a.node < b.node;
              if (a.flow_id != b.flow_id) return a.flow_id < b.flow_id;
              if (a.frame_id != b.frame_id) return a.frame_id < b.frame_id;
              return a.detail < b.detail;
            });
  return out;
}

std::uint64_t InvariantMonitor::total_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_violations_;
}

std::uint64_t InvariantMonitor::checks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checks_;
}

std::size_t InvariantMonitor::frames_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return custody_.size();
}

}  // namespace trimgrad::net
