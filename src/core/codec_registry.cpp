#include "core/codec_registry.h"

#include <algorithm>
#include <stdexcept>

namespace trimgrad::core {

const CodecRegistry& CodecRegistry::global() {
  static const CodecRegistry* reg = [] {
    auto* r = new CodecRegistry();
    r->add({"baseline", Scheme::kBaseline, true,
            "uncompressed float32 packets (the reliable-transport baseline)"});
    r->add({"sign", Scheme::kSign, true,
            "1-bit sign with per-packet scale (signSGD-style)"});
    r->add({"sq", Scheme::kSQ, true,
            "stochastic b-bit uniform quantization"});
    r->add({"sd", Scheme::kSD, true,
            "stochastic dithering with shared-seed reconstruction"});
    r->add({"rht", Scheme::kRHT, true,
            "randomized Hadamard transform + 1-bit heads (the paper's codec)"});
    r->add({"sparsify", Scheme::kTopK, true,
            "ahead-of-time top-k sparsify, then SD heads/tails (MLT-style)"});
    r->add({"magnitude", Scheme::kMagnitude, true,
            "magnitude-ordered placement + SD (the paper's §2 strawman)"});
    r->add({"lowrank", Scheme::kLowRank, true,
            "PowerSGD factors in a rank-ordered trimmable layout"});
    r->add({"eden", Scheme::kBaseline, false,
            "EDEN b-bit rotated quantization (core/eden.h; no packet train)"});
    r->add({"multilevel", Scheme::kBaseline, false,
            "multi-level trim codec (core/multilevel.h; no packet train)"});
    return r;
  }();
  return *reg;
}

const CodecInfo* CodecRegistry::find(const std::string& name) const {
  for (const auto& c : codecs_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const CodecInfo& CodecRegistry::at(const std::string& name) const {
  if (const CodecInfo* c = find(name)) return *c;
  std::string msg = "unknown codec '" + name + "'; registered:";
  for (const auto& n : names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

std::vector<std::string> CodecRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(codecs_.size());
  for (const auto& c : codecs_) out.push_back(c.name);
  std::sort(out.begin(), out.end());
  return out;
}

const std::string& CodecRegistry::name_of(Scheme scheme) const {
  for (const auto& c : codecs_) {
    if (c.packet_train && c.scheme == scheme) return c.name;
  }
  throw std::invalid_argument("scheme has no registered packet-train codec");
}

void CodecRegistry::add(CodecInfo info) {
  codecs_.push_back(std::move(info));
}

}  // namespace trimgrad::core
